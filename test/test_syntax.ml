open Tgd_syntax
open Helpers

(* ---- variables and constants ---- *)

let test_variable_basics () =
  check_bool "equal" true (Variable.equal (v "x") (v "x"));
  check_bool "distinct" false (Variable.equal (v "x") (v "y"));
  Alcotest.check_raises "empty name" (Invalid_argument "Variable.make: empty name")
    (fun () -> ignore (Variable.make ""));
  let f1 = Variable.fresh () and f2 = Variable.fresh () in
  check_bool "fresh distinct" false (Variable.equal f1 f2);
  Alcotest.check Alcotest.string "indexed" "x3" (Variable.name (Variable.indexed "x" 3))

let test_constant_order () =
  let a = c "a" and b = c "b" in
  check_bool "named eq" true (Constant.equal a (c "a"));
  check_bool "pair eq" true
    (Constant.equal (Constant.pair a b) (Constant.pair (c "a") (c "b")));
  check_bool "pair neq" false
    (Constant.equal (Constant.pair a b) (Constant.pair b a));
  check_bool "null is null" true (Constant.is_null (Constant.null 3));
  check_bool "pair with null is null" true
    (Constant.is_null (Constant.pair a (Constant.null 1)));
  check_bool "named not null" false (Constant.is_null a);
  Alcotest.check Alcotest.string "projections" "a"
    (Constant.to_string (Constant.first (Constant.pair a b)));
  Alcotest.check_raises "first of non-pair"
    (Invalid_argument "Constant.first: not a pair") (fun () ->
      ignore (Constant.first a))

let test_constant_total_order () =
  (* compare is a total order: antisymmetric and transitive on a sample *)
  let cs =
    [ c "a"; c "b"; Constant.indexed 0; Constant.indexed 5;
      Constant.pair (c "a") (c "b"); Constant.null 1; Constant.null 2 ]
  in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let xy = Constant.compare x y and yx = Constant.compare y x in
          check_bool "antisymmetry" true (compare xy 0 = compare 0 yx))
        cs)
    cs

(* ---- relations and schemas ---- *)

let test_relation () =
  let r = Relation.make "R" 2 in
  Alcotest.check Alcotest.string "name" "R" (Relation.name r);
  check_int "arity" 2 (Relation.arity r);
  check_bool "same name different arity differ" false
    (Relation.equal r (Relation.make "R" 3));
  Alcotest.check_raises "negative arity"
    (Invalid_argument "Relation.make: negative arity") (fun () ->
      ignore (Relation.make "R" (-1)))

let test_schema () =
  let s = schema [ ("R", 2); ("P", 1); ("T", 1) ] in
  check_int "size" 3 (Schema.size s);
  check_int "max arity" 2 (Schema.max_arity s);
  check_bool "mem" true (Schema.mem s (Relation.make "P" 1));
  check_bool "find" true (Schema.find s "R" <> None);
  Alcotest.check Alcotest.(option int) "arity_of" (Some 2) (Schema.arity_of s "R");
  check_bool "subset" true
    (Schema.subset (schema [ ("P", 1) ]) s);
  check_bool "not subset" false
    (Schema.subset s (schema [ ("P", 1) ]));
  Alcotest.check_raises "arity clash"
    (Invalid_argument "Schema: relation R declared with arities 2 and 3")
    (fun () -> ignore (schema [ ("R", 2); ("R", 3) ]))

let test_schema_union_dedup () =
  let s1 = schema [ ("R", 2) ] and s2 = schema [ ("R", 2); ("P", 1) ] in
  check_int "union dedups" 2 (Schema.size (Schema.union s1 s2));
  check_bool "union equal" true (Schema.equal (Schema.union s1 s2) s2)

(* ---- atoms and facts ---- *)

let test_atom () =
  let r = Relation.make "R" 2 in
  let a = Atom.of_vars r [ v "x"; v "y" ] in
  check_int "arity" 2 (Atom.arity a);
  check_int "vars" 2 (Variable.Set.cardinal (Atom.vars a));
  Alcotest.check (Alcotest.list Alcotest.string) "var order"
    [ "y"; "x" ]
    (List.map Variable.name (Atom.var_list (Atom.of_vars r [ v "y"; v "x" ])));
  check_bool "not ground" false (Atom.is_ground a);
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Atom.make: R expects 2 arguments, got 1") (fun () ->
      ignore (Atom.of_vars r [ v "x" ]))

let test_atom_substitute () =
  let r = Relation.make "R" 2 in
  let a = Atom.of_vars r [ v "x"; v "y" ] in
  let sigma = Variable.Map.singleton (v "x") (Term.const (c "a")) in
  let a' = Atom.substitute sigma a in
  Alcotest.check Alcotest.string "partial grounding" "R(a,y)" (Atom.to_string a');
  let rho = Variable.Map.singleton (v "y") (v "w") in
  Alcotest.check Alcotest.string "rename" "R(x,w)"
    (Atom.to_string (Atom.rename rho a))

let test_fact () =
  let r = Relation.make "R" 2 in
  let f = Fact.make r [ c "a"; c "b" ] in
  check_int "constants" 2 (Constant.Set.cardinal (Fact.constants f));
  let g = Fact.map (fun x -> if Constant.equal x (c "a") then c "z" else x) f in
  Alcotest.check Alcotest.string "map" "R(z,b)" (Fact.to_string g);
  Alcotest.check (Alcotest.option fact_testable) "atom round trip" (Some f)
    (Fact.of_atom (Fact.to_atom f));
  Alcotest.check (Alcotest.option fact_testable) "non-ground atom" None
    (Fact.of_atom (Atom.of_vars r [ v "x"; v "y" ]))

(* ---- bindings ---- *)

let test_binding () =
  let b = Binding.of_list [ (v "x", c "a"); (v "y", c "b") ] in
  check_int "cardinal" 2 (Binding.cardinal b);
  check_bool "extend consistent" true (Binding.extend (v "x") (c "a") b <> None);
  check_bool "extend conflict" true (Binding.extend (v "x") (c "b") b = None);
  check_bool "injective" true (Binding.is_injective b);
  check_bool "non-injective" false
    (Binding.is_injective (Binding.of_list [ (v "x", c "a"); (v "y", c "a") ]));
  let merged = Binding.merge b (Binding.singleton (v "z") (c "d")) in
  check_bool "merge ok" true (merged <> None);
  check_bool "merge conflict" true
    (Binding.merge b (Binding.singleton (v "x") (c "q")) = None)

let test_binding_grounding () =
  let r = Relation.make "R" 2 in
  let b = Binding.of_list [ (v "x", c "a") ] in
  let a = Atom.of_vars r [ v "x"; v "y" ] in
  check_bool "partial ground fails" true (Binding.ground_atom b a = None);
  let b' = Binding.add (v "y") (c "b") b in
  Alcotest.check (Alcotest.option fact_testable) "full ground"
    (Some (Fact.make r [ c "a"; c "b" ]))
    (Binding.ground_atom b' a);
  check_bool "restrict" true
    (Binding.find (v "y") (Binding.restrict (Variable.Set.singleton (v "x")) b')
    = None)

(* ---- tgds ---- *)

let test_tgd_structure () =
  let s = tgd "R(x,y), S(y,z) -> exists u. T(x,u)." in
  check_int "n universal" 3 (Tgd.n_universal s);
  check_int "m existential" 1 (Tgd.m_existential s);
  check_int "frontier" 1 (Variable.Set.cardinal (Tgd.frontier s));
  check_bool "in TGD_{3,1}" true (Tgd.in_class_nm ~n:3 ~m:1 s);
  check_bool "not in TGD_{2,1}" false (Tgd.in_class_nm ~n:2 ~m:1 s);
  check_bool "not in TGD_{3,0}" false (Tgd.in_class_nm ~n:3 ~m:0 s)

let test_tgd_validation () =
  let r = Relation.make "R" 1 in
  Alcotest.check_raises "empty head" (Invalid_argument "Tgd.make: empty head")
    (fun () -> ignore (Tgd.make ~body:[ Atom.of_vars r [ v "x" ] ] ~head:[]));
  Alcotest.check_raises "no variables"
    (Invalid_argument "Tgd.make: a tgd has at least one variable") (fun () ->
      let aux = Relation.make "Aux" 0 in
      ignore (Tgd.make ~body:[] ~head:[ Atom.make aux [] ]));
  Alcotest.check_raises "constants rejected"
    (Invalid_argument "Tgd.make: tgds are constant-free") (fun () ->
      ignore
        (Tgd.make ~body:[ Atom.make r [ Term.const (c "a") ] ]
           ~head:[ Atom.of_vars r [ v "x" ] ]))

let test_tgd_bodiless () =
  let s = tgd "-> exists z. Start(z)." in
  check_int "n" 0 (Tgd.n_universal s);
  check_int "m" 1 (Tgd.m_existential s);
  check_bool "frontier empty" true (Variable.Set.is_empty (Tgd.frontier s))

let test_tgd_refresh () =
  let s = tgd "R(x,y) -> exists z. R(y,z)." in
  let s' = Tgd.refresh s in
  check_bool "refreshed differs syntactically" false (Tgd.equal s s');
  check_bool "refresh preserves class" true
    (Canonical.equal_up_to_renaming s s')

(* ---- classes ---- *)

let test_classes () =
  let lin = tgd "R(x,y) -> exists z. R(y,z)." in
  check_bool "linear" true (Tgd_class.is_linear lin);
  check_bool "linear is guarded" true (Tgd_class.is_guarded lin);
  check_bool "linear is fg" true (Tgd_class.is_frontier_guarded lin);
  check_bool "linear not full" false (Tgd_class.is_full lin);
  let guarded = tgd "R(x,y), P(x) -> T(x)." in
  check_bool "guarded" true (Tgd_class.is_guarded guarded);
  check_bool "guarded not linear" false (Tgd_class.is_linear guarded);
  let fg = tgd "R(x,y), S(y,z) -> T(x,y)." in
  check_bool "fg" true (Tgd_class.is_frontier_guarded fg);
  check_bool "fg not guarded" false (Tgd_class.is_guarded fg);
  let plain = tgd "E(x,y), E(y,z) -> E(x,z)." in
  check_bool "tc not fg" false (Tgd_class.is_frontier_guarded plain);
  check_bool "tc full" true (Tgd_class.is_full plain)

let test_class_inclusions () =
  (* LTGD ⊊ GTGD ⊊ FGTGD on a sample of tgds *)
  let sample =
    [ tgd "R(x,y) -> T(x)."; tgd "R(x,y), P(x) -> T(x).";
      tgd "R(x,y), S(y,z) -> T(x)."; tgd "R(x) -> exists z. R(z).";
      tgd "E(x,y), E(y,z) -> E(x,z)." ]
  in
  List.iter
    (fun s ->
      if Tgd_class.is_linear s then
        check_bool "L ⊆ G" true (Tgd_class.is_guarded s);
      if Tgd_class.is_guarded s then
        check_bool "G ⊆ FG" true (Tgd_class.is_frontier_guarded s))
    sample

let test_classes_empty_body () =
  (* an empty body has at most one atom, vacuously guards everything, and
     so sits in Linear, Guarded, and Frontier-guarded at once *)
  let seed = tgd "-> exists z. P(z)." in
  check_bool "empty body linear" true (Tgd_class.is_linear seed);
  check_bool "empty body guarded" true (Tgd_class.is_guarded seed);
  check_bool "empty body fg" true (Tgd_class.is_frontier_guarded seed);
  check_bool "empty body not full (existential head)" false
    (Tgd_class.is_full seed);
  check_bool "guard atom absent" true (Tgd_class.guard seed = None);
  (* two-atom existential seed: still empty-bodied, still all three *)
  let pair = tgd "-> exists z. P(z), Q(z)." in
  check_bool "pair seed linear" true (Tgd_class.is_linear pair);
  check_bool "pair seed guarded" true (Tgd_class.is_guarded pair);
  check_bool "pair seed fg" true (Tgd_class.is_frontier_guarded pair)

let test_classify_ordering () =
  (* classify lists the nested classes most restrictive first:
     Linear before Guarded before Frontier_guarded; Full orthogonal, last *)
  let pos c l =
    let rec go i = function
      | [] -> None
      | x :: r -> if x = c then Some i else go (i + 1) r
    in
    go 0 l
  in
  let check_order s =
    let cs = Tgd_class.classify s in
    (match (pos Tgd_class.Linear cs, pos Tgd_class.Guarded cs) with
    | Some i, Some j -> check_bool "L before G" true (i < j)
    | Some _, None -> Alcotest.fail "linear but not guarded"
    | _ -> ());
    (match (pos Tgd_class.Guarded cs, pos Tgd_class.Frontier_guarded cs) with
    | Some i, Some j -> check_bool "G before FG" true (i < j)
    | Some _, None -> Alcotest.fail "guarded but not fg"
    | _ -> ());
    match pos Tgd_class.Full cs with
    | Some i -> check_int "Full last" (List.length cs - 1) i
    | None -> ()
  in
  List.iter check_order
    [ tgd "-> exists z. P(z)."; tgd "R(x,y) -> T(x).";
      tgd "R(x,y), P(x) -> T(x)."; tgd "R(x,y), S(y,z) -> T(x,y).";
      tgd "E(x,y), E(y,z) -> E(x,z)."; tgd "R(x) -> exists z. S(x,z)." ];
  (* a linear full rule carries all four labels in order *)
  Alcotest.(check (list (of_pp Tgd_class.pp_cls)))
    "all four, ordered"
    [ Tgd_class.Linear; Tgd_class.Guarded; Tgd_class.Frontier_guarded;
      Tgd_class.Full ]
    (Tgd_class.classify (tgd "R(x,y) -> T(x)."))

let test_guard_extraction () =
  let s = tgd "R(x,y), P(x) -> T(x)." in
  (match Tgd_class.guard s with
  | Some g -> Alcotest.check Alcotest.string "guard" "R(x,y)" (Atom.to_string g)
  | None -> Alcotest.fail "expected a guard");
  let fg = tgd "R(x,y), S(y,z) -> T(x,y)." in
  check_bool "no full guard" true (Tgd_class.guard fg = None);
  check_bool "frontier guard exists" true (Tgd_class.frontier_guard fg <> None)

(* ---- egds / edds / dependencies ---- *)

let test_egd () =
  let r = Relation.make "R" 2 in
  let e = Egd.make ~body:[ Atom.of_vars r [ v "x"; v "y" ] ] (v "x") (v "y") in
  check_int "egd n" 2 (Egd.n_universal e);
  check_bool "nontrivial" false (Egd.is_trivial e);
  Alcotest.check_raises "vars must occur"
    (Invalid_argument "Egd.make: equated variables must occur in the body")
    (fun () ->
      ignore (Egd.make ~body:[ Atom.of_vars r [ v "x"; v "y" ] ] (v "x") (v "z")))

let test_edd () =
  let r = Relation.make "R" 2 in
  let body = [ Atom.of_vars r [ v "x"; v "y" ] ] in
  let d =
    Edd.make ~body
      ~disjuncts:
        [ Edd.Eq (v "x", v "y");
          Edd.Exists [ Atom.of_vars r [ v "y"; v "z" ] ] ]
  in
  check_int "edd n" 2 (Edd.n_universal d);
  check_int "edd m" 1 (Edd.m_existential d);
  check_bool "in E_{2,1}" true (Edd.in_e_nm ~n:2 ~m:1 d);
  check_bool "not single tgd" true (Edd.as_tgd d = None);
  check_int "disjunct deps" 2 (List.length (Edd.disjunct_dependencies d))

let test_edd_tgd_round_trip () =
  let s = tgd "R(x,y) -> exists z. R(y,z)." in
  match Edd.as_tgd (Edd.of_tgd s) with
  | Some s' -> check_tgd "round trip" s s'
  | None -> Alcotest.fail "edd of tgd should convert back"

let suite =
  [ case "variable basics" test_variable_basics;
    case "constant order" test_constant_order;
    case "constant total order" test_constant_total_order;
    case "relation" test_relation;
    case "schema" test_schema;
    case "schema union dedup" test_schema_union_dedup;
    case "atom" test_atom;
    case "atom substitute/rename" test_atom_substitute;
    case "fact" test_fact;
    case "binding" test_binding;
    case "binding grounding" test_binding_grounding;
    case "tgd structure" test_tgd_structure;
    case "tgd validation" test_tgd_validation;
    case "bodiless tgd" test_tgd_bodiless;
    case "tgd refresh" test_tgd_refresh;
    case "classes" test_classes;
    case "class inclusions" test_class_inclusions;
    case "classes: empty bodies" test_classes_empty_body;
    case "classify ordering" test_classify_ordering;
    case "guard extraction" test_guard_extraction;
    case "egd" test_egd;
    case "edd" test_edd;
    case "edd/tgd round trip" test_edd_tgd_round_trip
  ]
