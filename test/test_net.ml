(* The network serving subsystem: admission predicts and sheds, the
   dispatcher answers every request exactly once from any number of
   threads, the socket transport round-trips the NDJSON protocol and
   drains gracefully, the shared warm caches stay within their byte
   ceiling, and — the properties — concurrent connections issuing the
   same requests read byte-identical responses while the server-scope
   hit counters only ever climb. *)

open Helpers
module Json = Tgd_serve.Json
module Server = Tgd_serve.Server
module Memo = Tgd_engine.Memo
module Chaos = Tgd_engine.Chaos
module Strategy = Tgd_analysis.Strategy
module Admission = Tgd_net.Admission
module Dispatcher = Tgd_net.Dispatcher
module Transport = Tgd_net.Transport
module Loadgen = Tgd_net.Loadgen
module Warm = Tgd_net.Warm

let req src =
  match Json.of_string src with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad test request %s: %s" src m

let get_ok resp =
  match Json.member "ok" resp with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "response without ok: %s" (Json.to_string resp)

let error_code resp =
  match Option.bind (Json.member "error" resp) (Json.member "code") with
  | Some (Json.String c) -> c
  | _ -> Alcotest.failf "no error code in %s" (Json.to_string resp)

(* -- warm cache byte ceiling --------------------------------------------- *)

let test_memo_byte_ceiling () =
  let m : string Memo.t = Memo.create ~name:"test-lru" () in
  Memo.set_limit m ~bytes:(Some 16_384);
  (* 16_384 requested, but each shard floors at 4 KiB: the effective
     ceiling is shard_count * 4096.  Insert well past it. *)
  let effective = Memo.shard_count * 4096 in
  let payload i = String.make 2048 (Char.chr (65 + (i mod 26))) in
  for i = 0 to 199 do
    ignore (Memo.find_or_add m (Printf.sprintf "key-%d" i) (fun () -> payload i))
  done;
  check_bool "evictions happened" true (Memo.evictions m > 0);
  check_bool "footprint bounded"
    true
    (Memo.approx_bytes m <= effective);
  check_bool "table still serves" true
    (Memo.find_or_add m "key-fresh" (fun () -> "v") = "v");
  (* removing the limit resets accounting *)
  Memo.set_limit m ~bytes:None;
  check_int "unlimited tables do not weigh" 0 (Memo.approx_bytes m)

(* -- admission ----------------------------------------------------------- *)

let terminating = {| {"id":1,"op":"entail","tgds":"E(x,y) -> S(y).","goal":"E(x,y) -> S(y)."} |}
let uncertified = {| {"id":1,"op":"entail","tgds":"E(x,y) -> E(y,z).","goal":"E(x,y) -> S(y)."} |}

let test_admission_predicts () =
  let config = Admission.default_config ~queue_limit:8 in
  let cost src = Admission.predict config (req src) in
  check_bool "classify is cheap" true
    (cost {| {"id":1,"op":"classify","tgds":"E(x,y) -> S(y)."} |}
    = Strategy.Cheap);
  check_bool "certified entailment is moderate" true
    (cost terminating = Strategy.Moderate);
  check_bool "uncertified entailment is expensive" true
    (cost uncertified = Strategy.Expensive);
  check_bool "unparsable rules fail fast, predicted cheap" true
    (cost {| {"id":1,"op":"entail","tgds":"not rules"} |} = Strategy.Cheap)

let test_admission_sheds_by_cost () =
  let config = Admission.default_config ~queue_limit:8 in
  let decide depth src =
    Admission.decide config ~queue_depth:depth (req src)
  in
  (match decide 0 uncertified with
  | Admission.Admit Strategy.Expensive -> ()
  | _ -> Alcotest.fail "empty queue admits even expensive work");
  (match decide config.Admission.expensive_at uncertified with
  | Admission.Shed Strategy.Expensive -> ()
  | _ -> Alcotest.fail "expensive work sheds at the early threshold");
  (match decide config.Admission.expensive_at terminating with
  | Admission.Admit _ -> ()
  | _ -> Alcotest.fail "moderate work rides past the early threshold");
  match decide config.Admission.queue_limit terminating with
  | Admission.Shed _ -> ()
  | _ -> Alcotest.fail "everything sheds at the hard limit"

(* The rewrite estimate must track the chunk costing's capped candidate
   enumeration, not the astronomical Section 9.2 bound: a certified
   layered ontology stays Moderate (admitted on the warm path), so a
   loadgen sweep over it never sees a spurious shed. *)
let layered_rewrite =
  {| {"id":1,"op":"rewrite","direction":"g2l","max_head_atoms":1,
      "tgds":"R0L0(x,y) -> R0L1(y,x). R0L0(x,y) -> P0L0(x). R0L0(x,y), P0L0(x) -> T0L0(x). R1L0(x,y) -> R1L1(y,x). R1L0(x,y) -> P1L0(x). R1L0(x,y), P1L0(x) -> T1L0(x)."} |}

let test_admission_rewrite_capped_estimate () =
  let config = Admission.default_config ~queue_limit:8 in
  check_bool "certified layered rewrite is moderate, not expensive" true
    (Admission.predict config (req layered_rewrite) = Strategy.Moderate);
  match Admission.decide config ~queue_depth:0 (req layered_rewrite) with
  | Admission.Admit _ -> ()
  | _ -> Alcotest.fail "certified layered rewrite must be admitted"

(* A batch costs what its priciest member costs. *)
let test_admission_batch_max_of_members () =
  let config = Admission.default_config ~queue_limit:8 in
  let batch subs =
    Json.Obj
      [ ("id", Json.Int 1);
        ("op", Json.String "batch");
        ("requests", Json.List (List.map req subs))
      ]
  in
  check_bool "batch of moderate is moderate" true
    (Admission.predict config (batch [ terminating; terminating ])
    = Strategy.Moderate);
  check_bool "one expensive member makes the batch expensive" true
    (Admission.predict config (batch [ terminating; uncertified ])
    = Strategy.Expensive);
  check_bool "empty batch is cheap" true
    (Admission.predict config (batch []) = Strategy.Cheap)

(* -- dispatcher ---------------------------------------------------------- *)

let with_dispatcher ?(workers = 2) ?admission f =
  let admission =
    Option.value admission
      ~default:(Admission.default_config ~queue_limit:16)
  in
  let d =
    Dispatcher.create
      { Dispatcher.server = Server.default_config; workers; admission }
  in
  Fun.protect ~finally:(fun () -> Dispatcher.shutdown d) (fun () -> f d)

let test_dispatcher_serves_and_reports () =
  with_dispatcher (fun d ->
      let resp = Dispatcher.handle d (req terminating) in
      check_bool "entail served" true (get_ok resp);
      let stats = Dispatcher.handle d (req {| {"id":9,"op":"stats"} |}) in
      check_bool "stats op ok" true (get_ok stats);
      match Option.bind (Json.member "result" stats) (Json.member "requests_served") with
      | Some (Json.Int n) -> check_bool "served counted" true (n >= 1)
      | _ -> Alcotest.fail "stats without requests_served")

let test_dispatcher_sheds_with_typed_overload () =
  let admission =
    { (Admission.default_config ~queue_limit:0) with Admission.queue_limit = 0 }
  in
  with_dispatcher ~admission (fun d ->
      let resp = Dispatcher.handle d (req terminating) in
      check_bool "shed" true (not (get_ok resp));
      check_bool "typed overloaded" true (error_code resp = "overloaded");
      match
        Option.bind (Json.member "error" resp) (Json.member "predicted_cost")
      with
      | Some (Json.String _) -> ()
      | _ -> Alcotest.fail "overload response without predicted_cost")

(* A batch of k sub-requests answers exactly like k sequential
   submissions: same sub-responses, byte for byte, in submission order —
   chunked parallel dispatch is invisible to the client. *)
let test_dispatcher_batch_matches_sequential () =
  with_dispatcher (fun d ->
      let subs =
        List.init 6 (fun i ->
            req
              (Printf.sprintf
                 {| {"id":%d,"op":"entail","tgds":"E(x,y) -> S(y).","goal":"E(x,y) -> S(y)."} |}
                 i))
      in
      let individual =
        List.map (fun s -> Json.to_string (Dispatcher.handle d s)) subs
      in
      let batch =
        Dispatcher.handle d
          (Json.Obj
             [ ("id", Json.Int 99);
               ("op", Json.String "batch");
               ("requests", Json.List subs)
             ])
      in
      check_bool "batch ok" true (get_ok batch);
      (match Json.member "id" batch with
      | Some (Json.Int 99) -> ()
      | _ -> Alcotest.fail "batch response must echo the batch id");
      match Option.bind (Json.member "result" batch) (Json.member "responses") with
      | Some (Json.List resps) ->
        check_int "one response per sub-request" (List.length subs)
          (List.length resps);
        List.iteri
          (fun i r ->
            check_bool
              (Printf.sprintf "sub-response %d byte-identical" i)
              true
              (Json.to_string r = List.nth individual i))
          resps
      | _ -> Alcotest.fail "batch response without responses list")

let test_dispatcher_batch_rejects_malformed () =
  with_dispatcher (fun d ->
      let resp =
        Dispatcher.handle d (req {| {"id":1,"op":"batch","requests":"nope"} |})
      in
      check_bool "malformed batch refused" true (not (get_ok resp)))

let test_dispatcher_total_under_faults () =
  with_dispatcher (fun d ->
      Chaos.with_config
        { Chaos.default_config with Chaos.seed = 23; raise_p = 0.3 }
        (fun () ->
          let ok = ref 0 and fault = ref 0 in
          for i = 1 to 25 do
            let resp =
              Dispatcher.handle d
                (req
                   (Printf.sprintf
                      {| {"id":%d,"op":"entail","tgds":"E(x,y) -> S(y).","goal":"E(x,y) -> S(y)."} |}
                      i))
            in
            match Json.member "ok" resp with
            | Some (Json.Bool true) -> incr ok
            | Some (Json.Bool false) -> incr fault
            | _ -> Alcotest.failf "malformed: %s" (Json.to_string resp)
          done;
          check_int "every request answered" 25 (!ok + !fault);
          check_bool "retries rescue most" true (!ok > 0)))

(* -- socket transport ---------------------------------------------------- *)

let fresh_sock () =
  let path =
    Filename.temp_file "tgd_test_net" ".sock"
  in
  Sys.remove path;
  path

let with_server ?(server = Server.default_config) ?(max_connections = 16)
    ?(workers = 2) f =
  let sock = fresh_sock () in
  let addr = Transport.Unix_sock sock in
  let t =
    Transport.start
      { Transport.dispatcher =
          { Dispatcher.server;
            workers;
            admission =
              Admission.default_config
                ~queue_limit:server.Server.queue_limit
          };
        max_connections;
        idle_timeout_s = None;
        drain_grace_s = 2.0
      }
      addr
  in
  let stopped = ref false in
  let stop () =
    if not !stopped then begin
      stopped := true;
      check_int "drain exits 0" 0 (Transport.stop t)
    end
  in
  Fun.protect ~finally:stop (fun () -> f addr);
  check_bool "socket unlinked after drain" false (Sys.file_exists sock)

(* One raw client connection: send each line, read one response per line. *)
let talk addr lines =
  let fd = Loadgen.connect ~attempts:20 addr in
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.map
        (fun line ->
          output_string oc line;
          output_char oc '\n';
          flush oc;
          input_line ic)
        lines)

let test_socket_round_trip () =
  with_server (fun addr ->
      let r =
        Loadgen.run addr ~connections:2 ~requests:6
          (Loadgen.entail_workload ~distinct:3 ())
      in
      check_int "no protocol violations" 0 r.Loadgen.malformed;
      check_int "all served" 12 r.Loadgen.ok)

let test_socket_oversized_line () =
  let server = { Server.default_config with Server.max_line_bytes = 256 } in
  with_server ~server (fun addr ->
      let big =
        Printf.sprintf {| {"id":1,"op":"classify","tgds":"%s"} |}
          (String.make 400 'x')
      in
      match
        talk addr
          [ big; {| {"id":2,"op":"classify","tgds":"E(x,y) -> S(y)."} |} ]
      with
      | [ r1; r2 ] ->
        check_bool "typed request_too_large" true
          (error_code (req r1) = "request_too_large");
        check_bool "session survives oversized line" true (get_ok (req r2))
      | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs))

let test_socket_connection_limit () =
  with_server ~max_connections:1 (fun addr ->
      let fd1 = Loadgen.connect addr in
      let ic1 = Unix.in_channel_of_descr fd1
      and oc1 = Unix.out_channel_of_descr fd1 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd1 with Unix.Unix_error _ -> ())
        (fun () ->
          (* complete one request so the first session is registered *)
          output_string oc1
            {| {"id":1,"op":"classify","tgds":"E(x,y) -> S(y)."} |};
          output_char oc1 '\n';
          flush oc1;
          check_bool "first connection served" true
            (get_ok (req (input_line ic1)));
          (* the second connection gets one overloaded line, then EOF *)
          let fd2 = Loadgen.connect addr in
          let ic2 = Unix.in_channel_of_descr fd2 in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd2 with Unix.Unix_error _ -> ())
            (fun () ->
              check_bool "over-limit connection refused with a typed line"
                true
                (error_code (req (input_line ic2)) = "overloaded");
              match input_line ic2 with
              | _ -> Alcotest.fail "over-limit connection not closed"
              | exception End_of_file -> ())))

(* -- fair queueing ------------------------------------------------------- *)

(* One slot, three waiters: two from connection 1 queued ahead of one
   from connection 2.  Round-robin grants alternate connections, so the
   grant order is conn1, conn2, conn1 — plain FIFO would have served
   both of connection 1's requests first. *)
let test_fairq_round_robin () =
  let module Fairq = Tgd_net.Fairq in
  let q = Fairq.create ~capacity:1 in
  (* hold the only slot so subsequent acquires park in order *)
  Fairq.acquire q ~conn:0;
  let mu = Mutex.create () in
  let order = ref [] in
  let worker conn tag =
    Thread.create
      (fun () ->
        Fairq.with_slot q ~conn (fun () ->
            Mutex.lock mu;
            order := tag :: !order;
            Mutex.unlock mu))
      ()
  in
  (* each waiter must be parked before the next queues, or the arrival
     order the rotation depends on is racy *)
  let settle n =
    let deadline = Unix.gettimeofday () +. 5. in
    while Fairq.waiting q < n && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    check_int "waiter parked" n (Fairq.waiting q)
  in
  let t1 = worker 1 "a1" in
  settle 1;
  let t2 = worker 1 "a2" in
  settle 2;
  let t3 = worker 2 "b1" in
  settle 3;
  check_bool "queue depths visible" true
    (List.assoc_opt 1 (Fairq.depths q) = Some 2
    && List.assoc_opt 2 (Fairq.depths q) = Some 1);
  Fairq.release q;
  List.iter Thread.join [ t1; t2; t3 ];
  check_bool "grants rotate across connections" true
    (List.rev !order = [ "a1"; "b1"; "a2" ])

(* -- session-end classification ------------------------------------------ *)

let test_classify_session_exn () =
  let name e = Transport.session_end_name (Transport.classify_session_exn e) in
  check_bool "EOF is client_closed" true (name End_of_file = "client_closed");
  check_bool "EPIPE is peer_reset" true
    (name (Unix.Unix_error (Unix.EPIPE, "write", "")) = "peer_reset");
  check_bool "ECONNRESET is peer_reset" true
    (name (Unix.Unix_error (Unix.ECONNRESET, "read", "")) = "peer_reset");
  check_bool "channel broken-pipe text is peer_reset" true
    (name (Sys_error "Broken pipe") = "peer_reset");
  check_bool "blocked io is idle_timeout" true
    (name Sys_blocked_io = "idle_timeout");
  check_bool "EAGAIN is idle_timeout" true
    (name (Unix.Unix_error (Unix.EAGAIN, "read", "")) = "idle_timeout");
  check_bool "rcvtimeo channel text is idle_timeout" true
    (name (Sys_error "Resource temporarily unavailable") = "idle_timeout");
  check_bool "anything else keeps its message" true
    (name (Failure "boom") = "error")

(* A server with a short idle timeout: a quiet-but-open connection is
   closed by the server and counted as idle_timeout; a client that
   pipelines requests and slams the connection shut without reading is
   counted as peer_reset.  Counted via the typed accessors, and also
   surfaced under stats.sessions. *)
let with_idle_server ?idle_timeout_s f =
  let sock = fresh_sock () in
  let t =
    Transport.start
      { Transport.dispatcher =
          { Dispatcher.server = Server.default_config;
            workers = 2;
            admission = Admission.default_config ~queue_limit:16
          };
        max_connections = 16;
        idle_timeout_s;
        drain_grace_s = 2.0
      }
      (Transport.Unix_sock sock)
  in
  Fun.protect
    ~finally:(fun () -> check_int "drain exits 0" 0 (Transport.stop t))
    (fun () -> f t (Transport.Unix_sock sock))

let poll_counter what read =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    if read () > 0 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let test_idle_timeout_counted () =
  with_idle_server ~idle_timeout_s:0.3 (fun t addr ->
      let fd = Loadgen.connect addr in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          poll_counter "idle-timeout session end" (fun () ->
              Transport.idle_timeouts (Transport.session_ends t))))

let test_peer_reset_counted () =
  with_idle_server (fun t addr ->
      (* pipeline a few requests and close without reading: the server's
         response writes hit a closed peer (EPIPE) *)
      let attempt () =
        let fd = Loadgen.connect addr in
        let oc = Unix.out_channel_of_descr fd in
        for i = 0 to 2 do
          output_string oc
            (Printf.sprintf
               {| {"id":%d,"op":"entail","tgds":"E(x,y) -> S(y). S(x) -> T(x).","goal":"E(x0, x1), E(x1, x2) -> T(x2)."} |}
               i);
          output_char oc '\n'
        done;
        flush oc;
        Unix.close fd
      in
      let deadline = Unix.gettimeofday () +. 10. in
      let rec drive () =
        if Transport.peer_resets (Transport.session_ends t) > 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "no peer_reset counted"
        else begin
          attempt ();
          Thread.delay 0.1;
          drive ()
        end
      in
      drive ())

(* -- properties ---------------------------------------------------------- *)

(* Request scripts drawn from the deterministic ops (never [stats], whose
   payload legitimately varies between calls). *)
let gen_script : string list QCheck.Gen.t =
  QCheck.Gen.(
    let gen_line =
      oneof
        [ map
            (fun k ->
              let goal = Buffer.create 64 in
              for j = 0 to k do
                if j > 0 then Buffer.add_string goal ", ";
                Buffer.add_string goal
                  (Printf.sprintf "E(x%d, x%d)" j (j + 1))
              done;
              Printf.sprintf
                {| {"id":%d,"op":"entail","tgds":"E(x,y) -> S(y). S(x) -> T(x).","goal":"%s -> T(x%d)."} |}
                k (Buffer.contents goal) (k + 1))
            (int_range 1 4);
          map
            (fun k ->
              Printf.sprintf
                {| {"id":%d,"op":"classify","tgds":"E(x,y) -> S(y)."} |} k)
            (int_range 1 4);
          return {| not json at all |}
        ]
    in
    list_size (int_range 1 6) gen_line)

let arb_script =
  QCheck.make ~print:(String.concat "\n") gen_script

(* C connections replay the same script concurrently; the byte streams
   they read back must be identical.  This is what licenses sharing the
   warm caches across connections at all: no per-connection state leaks
   into responses. *)
let prop_identical_responses =
  QCheck.Test.make ~count:12 ~name:"concurrent connections read identical bytes"
    arb_script
    (fun script ->
      let out = Array.make 3 [] in
      with_server (fun addr ->
          let threads =
            List.init 3 (fun i ->
                Thread.create (fun () -> out.(i) <- talk addr script) ())
          in
          List.iter Thread.join threads);
      out.(0) = out.(1) && out.(1) = out.(2))

let hits_of resp =
  match
    Option.bind (Json.member "cache" resp) (Json.member "hits")
  with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "no cache.hits in %s" (Json.to_string resp)

let test_hit_counters_monotone () =
  Warm.reset ();
  with_server (fun addr ->
      let line =
        {| {"id":7,"op":"entail","tgds":"E(x,y) -> S(y). S(x) -> T(x).","goal":"E(x0, x1), E(x1, x2) -> T(x2).","cache_stats":true} |}
      in
      let responses = talk addr (List.init 8 (fun _ -> line)) in
      let hits = List.map (fun r -> hits_of (req r)) responses in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      check_bool "hit counter never decreases" true (monotone hits);
      check_bool "repeats actually hit" true
        (List.nth hits 7 > List.hd hits))

let suite =
  [ case "memo byte ceiling evicts LRU" test_memo_byte_ceiling;
    case "admission predicts cost from static analysis"
      test_admission_predicts;
    case "admission sheds expensive work early" test_admission_sheds_by_cost;
    case "admission rewrite estimate stays capped"
      test_admission_rewrite_capped_estimate;
    case "admission batch costs its priciest member"
      test_admission_batch_max_of_members;
    case "dispatcher serves and reports stats"
      test_dispatcher_serves_and_reports;
    case "dispatcher sheds with typed overload"
      test_dispatcher_sheds_with_typed_overload;
    case "dispatcher batch matches sequential submissions"
      test_dispatcher_batch_matches_sequential;
    case "dispatcher rejects malformed batch"
      test_dispatcher_batch_rejects_malformed;
    slow_case "dispatcher total under injected faults"
      test_dispatcher_total_under_faults;
    slow_case "socket round trip" test_socket_round_trip;
    case "oversized line over socket" test_socket_oversized_line;
    case "connection limit refuses with typed line"
      test_socket_connection_limit;
    case "fair queue grants round-robin across connections"
      test_fairq_round_robin;
    case "session-end exceptions classify by type"
      test_classify_session_exn;
    slow_case "idle timeout counted as typed session end"
      test_idle_timeout_counted;
    slow_case "peer disconnect counted as peer_reset"
      test_peer_reset_counted;
    QCheck_alcotest.to_alcotest ~long:true prop_identical_responses;
    slow_case "server-scope hit counters monotone"
      test_hit_counters_monotone
  ]
