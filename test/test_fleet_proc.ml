(* Process-level fleet tests: fork real shard processes, kill them, and
   check the supervision and failover story end-to-end.

   This is a separate test executable because OCaml's [Unix.fork] is
   permanently refused once a process has ever spawned a domain, and the
   main test binary's pool/dispatcher suites spawn plenty.  Ordering
   inside this executable matters for the same reason: every fleet test
   (whose supervisor forks respawns throughout its run) executes before
   the single-process comparison server, which is the first thing here
   to create domains — so it runs last. *)

module Json = Tgd_serve.Json
module Server = Tgd_serve.Server
module Admission = Tgd_net.Admission
module Dispatcher = Tgd_net.Dispatcher
module Transport = Tgd_net.Transport
module Loadgen = Tgd_net.Loadgen
module Fleet = Tgd_net.Fleet
module Supervisor = Tgd_engine.Supervisor

let check_bool what expected actual = Alcotest.check Alcotest.bool what expected actual
let check_int what expected actual = Alcotest.check Alcotest.int what expected actual

let req src =
  match Json.of_string src with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad test request %s: %s" src m

let fresh_sock () =
  let path = Filename.temp_file "tgd_test_fleet" ".sock" in
  Sys.remove path;
  path

let shard_config ?(workers = 2) () =
  let server = Server.default_config in
  { Transport.dispatcher =
      { Dispatcher.server;
        workers;
        admission =
          Admission.default_config ~queue_limit:server.Server.queue_limit
      };
    max_connections = 16;
    idle_timeout_s = None;
    drain_grace_s = 2.0
  }

let fast_policy =
  { Supervisor.max_restarts = 1000;
    backoff_base_s = 0.05;
    backoff_cap_s = 0.5;
    wedge_timeout_s = Some 10.0;
    tick_s = 0.05
  }

let with_fleet ?(shards = 3) ?(policy = fast_policy) f =
  let sock = fresh_sock () in
  let addr = Transport.Unix_sock sock in
  let t =
    Fleet.start
      { Fleet.default_config with
        shards;
        shard = shard_config ();
        policy;
        beat_s = 0.05;
        drain_grace_s = 3.0;
        retries = 6;
        backoff_base_s = 0.05
      }
      addr
  in
  let stopped = ref false in
  let stop () =
    if not !stopped then begin
      stopped := true;
      check_int "fleet drain exits 0" 0 (Fleet.stop t)
    end
  in
  Fun.protect ~finally:stop (fun () -> f t addr);
  check_bool "front socket unlinked after drain" false (Sys.file_exists sock)

let wait_for ?(timeout = 15.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let talk addr lines =
  let fd = Loadgen.connect ~attempts:20 addr in
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.map
        (fun line ->
          output_string oc line;
          output_char oc '\n';
          flush oc;
          input_line ic)
        lines)

(* The deterministic drill script: entailment over several distinct
   ontologies, so requests actually spread across shards. *)
let script =
  List.init 24 (fun i ->
      Json.to_string (Loadgen.multi_workload ~ontologies:6 ~distinct:3 () i))

(* Responses a fleet produced under a mid-stream shard kill, compared
   against a plain single-process server after every fleet is done
   (see the ordering note at the top of the file). *)
let failover_responses : string list ref = ref []

let test_respawn_with_service () =
  with_fleet (fun t addr ->
      let r1 = talk addr script in
      check_int "all requests answered" 24 (List.length r1);
      check_bool "shard killed" true (Fleet.kill_shard t 0);
      wait_for "respawn after kill" (fun () -> Fleet.respawn_count t > 0);
      (* service never paused: the drill script still answers in full *)
      let r2 = talk addr script in
      check_bool "responses unchanged across the kill" true (r1 = r2);
      wait_for "full strength restored" (fun () -> not (Fleet.degraded t)))

let test_degraded_sheds_expensive_answers_cheap () =
  (* 2 shards, majority quorum 2, and a respawn backoff far longer than
     the test: one kill leaves the fleet degraded for the duration *)
  let slow_policy = { fast_policy with Supervisor.backoff_base_s = 120. } in
  with_fleet ~shards:2 ~policy:slow_policy (fun t addr ->
      check_bool "full fleet is not degraded" false (Fleet.degraded t);
      check_bool "shard killed" true (Fleet.kill_shard t 1);
      wait_for "degraded below quorum" (fun () -> Fleet.degraded t);
      let responses =
        talk addr
          [ {| {"id":1,"op":"classify","tgds":"E(x,y) -> S(y)."} |};
            {| {"id":2,"op":"entail","tgds":"E(x,y) -> E(y,z).","goal":"E(x,y) -> S(y)."} |}
          ]
      in
      match List.map req responses with
      | [ cheap; expensive ] ->
        check_bool "degraded fleet still answers cheap requests" true
          (match Json.member "ok" cheap with
          | Some (Json.Bool b) -> b
          | _ -> false);
        let error = Json.member "error" expensive in
        check_bool "expensive request shed with typed overloaded" true
          (Option.bind error (Json.member "code")
          = Some (Json.String "overloaded"));
        check_bool "shed carries the degraded flag" true
          (Option.bind error (Json.member "degraded")
          = Some (Json.Bool true))
      | _ -> Alcotest.fail "expected two responses")

let test_fleet_status_op () =
  with_fleet (fun _t addr ->
      match talk addr [ {| {"id":9,"op":"fleet_status"} |} ] with
      | [ line ] -> (
        let resp = req line in
        check_bool "status is ok" true
          (Json.member "ok" resp = Some (Json.Bool true));
        match Json.member "result" resp with
        | Some result ->
          check_bool "status reports shard count" true
            (Json.member "shards" result = Some (Json.Int 3));
          check_bool "status reports full liveness" true
            (Json.member "alive" result = Some (Json.Int 3))
        | None -> Alcotest.fail "fleet_status without result")
      | _ -> Alcotest.fail "expected one response")

let test_failover_collect () =
  with_fleet (fun t addr ->
      let fd = Loadgen.connect ~attempts:20 addr in
      let ic = Unix.in_channel_of_descr fd
      and oc = Unix.out_channel_of_descr fd in
      failover_responses :=
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            List.mapi
              (fun i line ->
                (* mid-stream, kill the shard that owns the NEXT request:
                   the router must fail over without the client noticing *)
                if i = 12 then begin
                  let home =
                    Fleet.shard_of_digest ~shards:3
                      (Fleet.request_digest (req line))
                  in
                  ignore (Fleet.kill_shard t home)
                end;
                output_string oc line;
                output_char oc '\n';
                flush oc;
                input_line ic)
              script);
      check_int "all requests answered under the kill" 24
        (List.length !failover_responses))

(* LAST: spawns domains, which forbids any further fork in this
   process. *)
let test_failover_byte_identical () =
  let sock = fresh_sock () in
  let single = Transport.start (shard_config ()) (Transport.Unix_sock sock) in
  let expected = talk (Transport.Unix_sock sock) script in
  check_int "single-process drain exits 0" 0 (Transport.stop single);
  check_bool "failover responses byte-identical to single-process run" true
    (expected = !failover_responses)

let () =
  Alcotest.run "tgdonto-fleet"
    [ ( "fleet-proc",
        [ Alcotest.test_case "killed shard respawns while service continues"
            `Slow test_respawn_with_service;
          Alcotest.test_case "degraded fleet sheds expensive, answers cheap"
            `Slow test_degraded_sheds_expensive_answers_cheap;
          Alcotest.test_case "fleet_status answered by the router" `Slow
            test_fleet_status_op;
          Alcotest.test_case "failover under mid-stream shard kill" `Slow
            test_failover_collect;
          Alcotest.test_case
            "failover responses byte-identical to single-process run" `Slow
            test_failover_byte_identical
        ] )
    ]
