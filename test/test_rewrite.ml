open Tgd_syntax
open Tgd_core
open Helpers

(* caps large enough to make the small schemas exhaustive *)
let exhaustive_config =
  Rewrite.
    { default_config with
      caps =
        Candidates.
          { max_body_atoms = 10; max_head_atoms = 10; keep_tautologies = false }
    }

(* these tests run unbudgeted, so unwrap the Budget.outcome eagerly *)
module R = Rewrite
let g_to_l ?config sigma = Tgd_engine.Budget.value (R.g_to_l ?config sigma)
let fg_to_g ?config sigma = Tgd_engine.Budget.value (R.fg_to_g ?config sigma)

let to_frontier_guarded ?config sigma =
  Tgd_engine.Budget.value (R.to_frontier_guarded ?config sigma)

let to_full ?config sigma = Tgd_engine.Budget.value (R.to_full ?config sigma)
let is_rewritable = function Rewrite.Rewritable _ -> true | _ -> false

let definitive_no = function
  | Rewrite.Not_rewritable { complete; _ } -> complete
  | _ -> false

let test_class_bounds () =
  let n, m = Rewrite.class_bounds [ tgd "R(x,y), S(y,z) -> exists u. T(x,u)." ] in
  check_int "n" 3 n;
  check_int "m" 1 m;
  let n0, m0 = Rewrite.class_bounds [] in
  check_int "empty n" 0 n0;
  check_int "empty m" 0 m0

let test_g_to_l_separation () =
  (* Section 9.1: Σ_G = {R(x), P(x) → T(x)} has no linear rewriting *)
  let sigma_g, _ = Tgd_workload.Families.separation_linear_vs_guarded in
  let report = g_to_l ~config:exhaustive_config sigma_g in
  check_bool "not rewritable" true (definitive_no report.Rewrite.outcome)

let test_g_to_l_positive () =
  let sigma = Tgd_workload.Families.guarded_rewritable 1 in
  let report = g_to_l ~config:exhaustive_config sigma in
  match report.Rewrite.outcome with
  | Rewrite.Rewritable sigma' ->
    check_bool "all linear" true (Tgd_class.all_in_class Tgd_class.Linear sigma');
    (* Linearization Lemma (1) ⇒ (2): variable bounds preserved *)
    let n, m = Rewrite.class_bounds sigma in
    List.iter
      (fun t -> check_bool "within TGD_{n,m}" true (Tgd.in_class_nm ~n ~m t))
      sigma';
    (* semantic equivalence, certified two ways *)
    check_answer "Σ ⊨ Σ'" Tgd_chase.Entailment.Proved
      (Tgd_chase.Entailment.entails_set sigma sigma');
    check_answer "Σ' ⊨ Σ" Tgd_chase.Entailment.Proved
      (Tgd_chase.Entailment.entails_set sigma' sigma);
    check_bool "bounded models agree" true
      (Rewrite.verify_equivalence_bounded sigma sigma' ~dom_size:2 = None)
  | other -> Alcotest.failf "expected rewritable, got %a" Rewrite.pp_outcome other

let test_g_to_l_already_linear () =
  (* a linear input rewrites to (something equivalent to) itself *)
  let sigma = [ tgd "E(x,y) -> exists z. E(y,z)." ] in
  let report = g_to_l ~config:exhaustive_config sigma in
  match report.Rewrite.outcome with
  | Rewrite.Rewritable sigma' ->
    check_answer "equivalent" Tgd_chase.Entailment.Proved
      (Tgd_chase.Entailment.equivalent sigma sigma')
  | other -> Alcotest.failf "expected rewritable, got %a" Rewrite.pp_outcome other

let test_g_to_l_input_validation () =
  Alcotest.check_raises "guarded input required"
    (Invalid_argument "Rewrite.g_to_l: input must be a set of guarded tgds")
    (fun () ->
      ignore (g_to_l [ tgd "E(x,y), E(y,z) -> E(x,z)." ]))

let test_fg_to_g_separation () =
  let sigma_f, _ = Tgd_workload.Families.separation_guarded_vs_fg in
  let report = fg_to_g ~config:exhaustive_config sigma_f in
  check_bool "not rewritable" true (definitive_no report.Rewrite.outcome)

let test_fg_to_g_positive () =
  (* tight caps keep the binary-schema guarded space small; caps only
     threaten completeness of a NEGATIVE answer, not this positive one *)
  let config =
    Rewrite.
      { default_config with
        caps =
          Candidates.
            { max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
      }
  in
  let sigma = Tgd_workload.Families.fg_rewritable 1 in
  let report = fg_to_g ~config sigma in
  match report.Rewrite.outcome with
  | Rewrite.Rewritable sigma' ->
    check_bool "all guarded" true (Tgd_class.all_in_class Tgd_class.Guarded sigma');
    check_answer "equivalent" Tgd_chase.Entailment.Proved
      (Tgd_chase.Entailment.equivalent sigma sigma')
  | other -> Alcotest.failf "expected rewritable, got %a" Rewrite.pp_outcome other

let test_fg_to_g_validation () =
  Alcotest.check_raises "fg input required"
    (Invalid_argument "Rewrite.fg_to_g: input must be frontier-guarded tgds")
    (fun () ->
      ignore (fg_to_g [ tgd "E(x,y), E(y,z) -> E(x,z)." ]))

let test_minimization () =
  let sigma = Tgd_workload.Families.guarded_rewritable 1 in
  let mini = g_to_l ~config:exhaustive_config sigma in
  let maxi =
    g_to_l ~config:Rewrite.{ exhaustive_config with minimize = false } sigma
  in
  match mini.Rewrite.outcome, maxi.Rewrite.outcome with
  | Rewrite.Rewritable small, Rewrite.Rewritable large ->
    check_bool "minimized not larger" true (List.length small <= List.length large);
    check_answer "still equivalent" Tgd_chase.Entailment.Proved
      (Tgd_chase.Entailment.equivalent small large)
  | _ -> Alcotest.fail "both runs should be rewritable"

let test_report_counters () =
  let sigma = Tgd_workload.Families.guarded_rewritable 1 in
  let report = g_to_l ~config:exhaustive_config sigma in
  check_bool "enumerated some" true (report.Rewrite.candidates_enumerated > 0);
  check_bool "entailed ≤ enumerated" true
    (report.Rewrite.candidates_entailed <= report.Rewrite.candidates_enumerated);
  check_int "n from input" 2 report.Rewrite.n;
  check_int "m from input" 0 report.Rewrite.m

let test_verify_equivalence_bounded () =
  let a = [ tgd "E(x,y) -> E(y,x)." ] in
  let b = [ tgd "E(x,y) -> E(x,x)." ] in
  check_bool "distinguishing countermodel found" true
    (Rewrite.verify_equivalence_bounded a b ~dom_size:2 <> None);
  check_bool "self equivalent" true
    (Rewrite.verify_equivalence_bounded a a ~dom_size:2 = None)

let small_caps_config =
  Rewrite.
    { default_config with
      caps =
        Candidates.
          { max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
    }

let test_to_frontier_guarded () =
  (* an already frontier-guarded (but non-guarded) input is re-found in the
     candidate space *)
  let fg_input = [ tgd "E(x,y), F(y,z) -> G(x,y)." ] in
  let report = to_frontier_guarded ~config:small_caps_config fg_input in
  (match report.Rewrite.outcome with
  | Rewrite.Rewritable sigma' ->
    check_bool "all fg" true
      (Tgd_class.all_in_class Tgd_class.Frontier_guarded sigma');
    check_answer "equivalent" Tgd_chase.Entailment.Proved
      (Tgd_chase.Entailment.equivalent fg_input sigma')
  | other -> Alcotest.failf "expected rewritable, got %a" Rewrite.pp_outcome other);
  (* transitive closure has no fg rewriting among the capped candidates *)
  let report =
    to_frontier_guarded ~config:small_caps_config
      Tgd_workload.Families.transitive_closure
  in
  (match report.Rewrite.outcome with
  | Rewrite.Rewritable _ ->
    Alcotest.fail "TC must not be fg-rewritable within these caps"
  | Rewrite.Not_rewritable _ | Rewrite.Unknown _ -> ())

let test_to_full () =
  (* an existential tgd whose witness is forced by a companion full tgd *)
  let sigma = tgds "P(x) -> exists z. E(x,z).\nP(x) -> E(x,x)." in
  let report = to_full ~config:exhaustive_config sigma in
  (match report.Rewrite.outcome with
  | Rewrite.Rewritable sigma' ->
    check_bool "all full" true (Tgd_class.all_in_class Tgd_class.Full sigma');
    check_answer "equivalent" Tgd_chase.Entailment.Proved
      (Tgd_chase.Entailment.equivalent sigma sigma')
  | other -> Alcotest.failf "expected rewritable, got %a" Rewrite.pp_outcome other);
  (* a genuinely existential ontology is not full-expressible *)
  let succ = [ tgd "P(x) -> exists z. E(x,z)." ] in
  let report = to_full ~config:exhaustive_config succ in
  match report.Rewrite.outcome with
  | Rewrite.Not_rewritable { complete; _ } -> check_bool "definitive" true complete
  | other -> Alcotest.failf "expected not rewritable, got %a" Rewrite.pp_outcome other

let test_minimize () =
  let redundant =
    [ tgd "E(x,y) -> F(x,y)."; tgd "F(x,y) -> G(x,y)."; tgd "E(x,y) -> G(x,y)." ]
  in
  let minimized = Rewrite.minimize redundant in
  check_int "dropped the implied tgd" 2 (List.length minimized);
  check_answer "still equivalent" Tgd_chase.Entailment.Proved
    (Tgd_chase.Entailment.equivalent redundant minimized);
  (* idempotent on irredundant sets *)
  check_int "irredundant untouched" 2
    (List.length (Rewrite.minimize minimized))

let test_schema_of () =
  let sigma = [ tgd "R(x,y) -> exists z. S(x,z)." ] in
  let s = Rewrite.schema_of sigma in
  check_int "two relations" 2 (Schema.size s);
  check_bool "has S" true (Schema.find s "S" <> None)

let suite =
  [ case "class bounds" test_class_bounds;
    case "G-to-L separation (§9.1)" test_g_to_l_separation;
    case "G-to-L positive" test_g_to_l_positive;
    case "G-to-L on linear input" test_g_to_l_already_linear;
    case "G-to-L validation" test_g_to_l_input_validation;
    case "FG-to-G separation (§9.1)" test_fg_to_g_separation;
    slow_case "FG-to-G positive" test_fg_to_g_positive;
    case "FG-to-G validation" test_fg_to_g_validation;
    case "minimization" test_minimization;
    case "report counters" test_report_counters;
    case "bounded equivalence check" test_verify_equivalence_bounded;
    case "rewrite into frontier-guarded" test_to_frontier_guarded;
    case "rewrite into full tgds" test_to_full;
    case "minimize" test_minimize;
    case "schema_of" test_schema_of
  ]
