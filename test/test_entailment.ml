open Tgd_syntax
open Tgd_chase
open Helpers

let test_basic_entailment () =
  let sigma = [ tgd "E(x,y) -> F(x,y)."; tgd "F(x,y) -> G(x,y)." ] in
  check_answer "transitive" Entailment.Proved
    (Entailment.entails sigma (tgd "E(x,y) -> G(x,y)."));
  check_answer "converse fails" Entailment.Disproved
    (Entailment.entails sigma (tgd "G(x,y) -> E(x,y)."));
  check_answer "self" Entailment.Proved
    (Entailment.entails sigma (tgd "E(x,y) -> F(x,y)."))

let test_tautologies () =
  check_answer "identity tautology" Entailment.Proved
    (Entailment.entails [] (tgd "E(x,y) -> E(x,y)."));
  check_answer "projection tautology" Entailment.Proved
    (Entailment.entails [] (tgd "E(x,y), E(y,x) -> E(x,y)."));
  check_answer "existential weakening" Entailment.Proved
    (Entailment.entails [] (tgd "E(x,y) -> exists z. E(x,z)."));
  check_answer "not a tautology" Entailment.Disproved
    (Entailment.entails [] (tgd "E(x,y) -> E(y,x)."))

let test_existential_entailment () =
  let sigma = [ tgd "P(x) -> exists z. E(x,z), P(z)." ] in
  (* one chase round only produces E(fx,n1), P(n1); the two-step pattern is
     not yet visible and the chase is not finished, so the answer is open *)
  check_answer "unfold twice" Entailment.Unknown
    (Entailment.entails
       ~budget:(Tgd_engine.Budget.limits ~rounds:1 ~facts:100)
       sigma
       (tgd "P(x) -> exists z,w. E(x,z), E(z,w)."))

let test_existential_entailment_proved () =
  let sigma = [ tgd "P(x) -> exists z. E(x,z), P(z)." ] in
  check_answer "unfold twice (enough budget)" Entailment.Proved
    (Entailment.entails
       ~budget:(Tgd_engine.Budget.limits ~rounds:3 ~facts:100)
       sigma
       (tgd "P(x) -> exists z,w. E(x,z), E(z,w)."))

let test_frontier_matters () =
  let sigma = [ tgd "E(x,y) -> exists z. E(x,z)." ] in
  (* σ gives SOME successor but not the named one *)
  check_answer "cannot pin witness" Entailment.Disproved
    (Entailment.entails sigma (tgd "E(x,y) -> E(x,y), E(y,y)."))

let test_guarded_saturation_example () =
  let sigma = Tgd_workload.Families.guarded_rewritable 1 in
  check_answer "R → T" Entailment.Proved
    (Entailment.entails sigma (tgd "R0(x,y) -> T0(x)."));
  check_answer "R → P" Entailment.Proved
    (Entailment.entails sigma (tgd "R0(x,y) -> P0(x)."));
  check_answer "P alone insufficient" Entailment.Disproved
    (Entailment.entails sigma (tgd "P0(x) -> T0(x)."))

let test_entails_set_and_equiv () =
  let sigma = Tgd_workload.Families.guarded_rewritable 1 in
  let sigma' = Tgd_workload.Families.guarded_rewritable_expected 1 in
  check_answer "Σ ⊨ Σ'" Entailment.Proved (Entailment.entails_set sigma sigma');
  check_answer "Σ' ⊨ Σ" Entailment.Proved (Entailment.entails_set sigma' sigma);
  check_answer "equivalent" Entailment.Proved (Entailment.equivalent sigma sigma');
  let weaker = [ tgd "R0(x,y) -> P0(x)." ] in
  check_answer "strictly weaker" Entailment.Disproved
    (Entailment.equivalent sigma weaker)

let test_unknown_on_nonterminating () =
  let sigma = [ tgd "E(x,y) -> exists z. E(y,z)." ] in
  (* the goal is genuinely not entailed, but the chase cannot terminate to
     prove it — three-valued honesty *)
  check_answer "unknown" Entailment.Unknown
    (Entailment.entails
       ~budget:(Tgd_engine.Budget.limits ~rounds:8 ~facts:200)
       sigma
       (tgd "E(x,y) -> F(x,y)."))

let test_egd_entailment () =
  let e = Relation.make "E" 2 in
  let trivial = Egd.make ~body:[ Atom.of_vars e [ v "x"; v "x" ] ] (v "x") (v "x") in
  let nontrivial = Egd.make ~body:[ Atom.of_vars e [ v "x"; v "y" ] ] (v "x") (v "y") in
  check_answer "trivial" Entailment.Proved (Entailment.entails_egd [] trivial);
  check_answer "tgds never force equality" Entailment.Disproved
    (Entailment.entails_egd [ tgd "E(x,y) -> E(y,x)." ] nontrivial)

let test_entailed_subset () =
  let sigma = [ tgd "E(x,y) -> F(x,y)." ] in
  let yes, no =
    Entailment.entailed_subset sigma
      [ tgd "E(x,y) -> F(x,y)."; tgd "E(x,y) -> exists z. F(x,z).";
        tgd "F(x,y) -> E(x,y)." ]
  in
  check_int "entailed" 2 (List.length yes);
  check_int "rest" 1 (List.length no)

let test_freeze () =
  let atoms = [ Atom.of_vars (Relation.make "E" 2) [ v "x"; v "y" ] ] in
  let b = Entailment.freeze atoms in
  check_int "binds both" 2 (Binding.cardinal b);
  check_bool "injective" true (Binding.is_injective b);
  (* a second freeze is name-apart *)
  let b2 = Entailment.freeze atoms in
  check_bool "name-apart"
    true
    (Constant.Set.is_empty (Constant.Set.inter (Binding.range b) (Binding.range b2)))

let suite =
  [ case "basic entailment" test_basic_entailment;
    case "tautologies" test_tautologies;
    case "insufficient budget is unknown" test_existential_entailment;
    case "sufficient budget proves" test_existential_entailment_proved;
    case "frontier matters" test_frontier_matters;
    case "guarded example" test_guarded_saturation_example;
    case "set entailment / equivalence" test_entails_set_and_equiv;
    case "unknown on non-terminating chase" test_unknown_on_nonterminating;
    case "egd entailment" test_egd_entailment;
    case "entailed subset" test_entailed_subset;
    case "freezing" test_freeze
  ]
