(* The semi-naive engine: Fact_index and Memo units, plus differential
   tests of the engine-backed chase against the snapshot-rescan reference
   loop ([~naive:true]). *)

open Tgd_syntax
open Tgd_instance
open Tgd_engine
open Tgd_chase
open Tgd_workload
open Helpers

let s = schema [ ("E", 2); ("P", 1); ("T", 1) ]

(* ---- Fact_index ---- *)

let rel name = Option.get (Schema.find s name)
let fact r cs = Fact.make (rel r) (List.map c cs)

let test_index_add_lookup () =
  let idx = Fact_index.create () in
  check_bool "fresh insert" true (Fact_index.add idx ~round:0 (fact "E" [ "a"; "b" ]));
  check_bool "duplicate rejected" false
    (Fact_index.add idx ~round:3 (fact "E" [ "a"; "b" ]));
  check_int "first stamp wins" 0
    (Option.get (Fact_index.round_of idx (fact "E" [ "a"; "b" ])));
  ignore (Fact_index.add idx ~round:1 (fact "E" [ "a"; "c" ]));
  ignore (Fact_index.add idx ~round:2 (fact "E" [ "b"; "c" ]));
  check_int "fact count" 3 (Fact_index.fact_count idx);
  let e = rel "E" in
  check_int "bucket E(a,_)" 2
    (List.length (List.of_seq (Fact_index.lookup idx e ~pos:0 (c "a"))));
  check_int "bucket E(_,c)" 2
    (List.length (List.of_seq (Fact_index.lookup idx e ~pos:1 (c "c"))));
  check_int "empty bucket" 0
    (List.length (List.of_seq (Fact_index.lookup idx e ~pos:0 (c "z"))))

let test_index_round_bounds () =
  let idx = Fact_index.create () in
  ignore (Fact_index.add idx ~round:0 (fact "E" [ "a"; "b" ]));
  ignore (Fact_index.add idx ~round:1 (fact "E" [ "a"; "c" ]));
  ignore (Fact_index.add idx ~round:2 (fact "E" [ "a"; "d" ]));
  let e = rel "E" in
  let count up_to =
    List.length (List.of_seq (Fact_index.lookup idx ~up_to e ~pos:0 (c "a")))
  in
  check_int "snapshot at 0" 1 (count 0);
  check_int "snapshot at 1" 2 (count 1);
  check_int "live view" 3 (count max_int);
  check_int "rel_size ignores bounds" 3 (Fact_index.rel_size idx e);
  check_int "selectivity estimate" 3 (Fact_index.bucket_size idx e ~pos:0 (c "a"))

(* The round barrier: [commit] must replay delta entries in exact
   insertion order — the flat delta, the per-relation groups, and the
   merged base buckets all read as if the facts had been inserted into a
   single-layer index sequentially. *)
let test_index_commit_insertion_order () =
  let fs =
    [ fact "E" [ "a"; "b" ]; fact "P" [ "a" ]; fact "E" [ "a"; "c" ];
      fact "T" [ "b" ]; fact "E" [ "b"; "c" ]; fact "P" [ "b" ] ]
  in
  let facts_equal xs ys =
    List.length xs = List.length ys && List.for_all2 Fact.equal xs ys
  in
  let idx = Fact_index.create () in
  List.iter (fun f -> ignore (Fact_index.add idx ~round:0 f)) fs;
  let flat, by_rel = Fact_index.commit idx in
  check_bool "flat delta in insertion order" true (facts_equal flat fs);
  check_bool "E group in insertion order" true
    (facts_equal
       (Hashtbl.find by_rel (rel "E"))
       [ fact "E" [ "a"; "b" ]; fact "E" [ "a"; "c" ]; fact "E" [ "b"; "c" ] ]);
  check_bool "P group in insertion order" true
    (facts_equal (Hashtbl.find by_rel (rel "P"))
       [ fact "P" [ "a" ]; fact "P" [ "b" ] ]);
  (* merged buckets = a never-committed index fed the same sequence *)
  let seq_idx = Fact_index.create () in
  List.iter (fun f -> ignore (Fact_index.add seq_idx ~round:0 f)) fs;
  let all i r = List.of_seq (Fact_index.all i (rel r)) in
  check_bool "merged E bucket = sequential" true
    (facts_equal (all idx "E") (all seq_idx "E"));
  (* the next round's facts land in a fresh delta; lookups read base
     entries first, then pending ones, preserving global insertion order *)
  ignore (Fact_index.add idx ~round:1 (fact "E" [ "c"; "d" ]));
  check_bool "pending fact visible before commit" true
    (Fact_index.mem idx (fact "E" [ "c"; "d" ]));
  check_bool "base-then-delta preserves order" true
    (facts_equal (all idx "E")
       [ fact "E" [ "a"; "b" ]; fact "E" [ "a"; "c" ]; fact "E" [ "b"; "c" ];
         fact "E" [ "c"; "d" ] ]);
  let flat2, _ = Fact_index.commit idx in
  check_bool "second commit carries only the new round" true
    (facts_equal flat2 [ fact "E" [ "c"; "d" ] ]);
  check_int "count spans both layers" 7 (Fact_index.fact_count idx)

let test_index_counts_probes () =
  let stats = Stats.create () in
  let idx = Fact_index.create ~stats () in
  ignore (Fact_index.add idx ~round:0 (fact "P" [ "a" ]));
  let p = rel "P" in
  ignore (List.of_seq (Fact_index.lookup idx p ~pos:0 (c "a")));
  ignore (List.of_seq (Fact_index.all idx p));
  ignore (Fact_index.bucket_size idx p ~pos:0 (c "a"));
  check_int "two probes" 2 stats.Stats.probes

(* ---- Memo ---- *)

let test_memo_find_or_add () =
  let m : int Memo.t = Memo.create ~name:"t" () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  check_int "computed" 42 (Memo.find_or_add m "k" compute);
  check_int "cached" 42 (Memo.find_or_add m "k" compute);
  check_int "compute ran once" 1 !calls;
  check_int "one hit" 1 (Memo.stats m).Stats.memo_hits;
  check_int "one miss" 1 (Memo.stats m).Stats.memo_misses;
  Memo.clear m;
  check_int "cleared" 0 (Memo.size m)

let test_memo_tgd_key_renaming () =
  let a = tgd "E(x,y), E(y,z) -> E(x,z)." in
  let b = tgd "E(v,u), E(u,w) -> E(v,w)." in
  Alcotest.(check string)
    "renamed tgds share a key" (Memo.tgd_key a) (Memo.tgd_key b);
  let d = tgd "E(x,y) -> E(y,x)." in
  check_bool "different tgds differ" false
    (String.equal (Memo.tgd_key a) (Memo.tgd_key d))

let test_memo_body_key () =
  let body t = Tgd.body t in
  let a = body (tgd "E(x,y), P(y) -> T(x).") in
  let b = body (tgd "P(v), E(u,v) -> T(u).") in
  Alcotest.(check string)
    "reordered+renamed bodies share a key" (Memo.body_key a) (Memo.body_key b);
  let canonical, renaming = Memo.body_canonical a in
  let renamed = List.map (Atom.rename renaming) a in
  check_bool "renaming rebuilds the canonical form (as a set)" true
    (Atom.Set.equal (Atom.Set.of_list canonical) (Atom.Set.of_list renamed))

let test_memo_sigma_key () =
  let t1 = tgd "E(x,y) -> P(x)." in
  let t2 = tgd "P(x) -> T(x)." in
  Alcotest.(check string)
    "order-independent" (Memo.sigma_key [ t1; t2 ]) (Memo.sigma_key [ t2; t1 ]);
  Alcotest.(check string)
    "duplication-independent" (Memo.sigma_key [ t1; t2 ])
    (Memo.sigma_key [ t1; t2; t1 ])

(* ---- engine vs naive chase (deterministic differentials) ---- *)

(* Both restricted chases terminated on the same input: the results are
   universal models, hence homomorphically equivalent fixing the database
   constants. *)
let check_restricted_equivalent name sigma db =
  let e = Chase.restricted sigma db in
  let n = Chase.restricted ~naive:true sigma db in
  check_bool (name ^ ": engine terminated") true (Chase.is_model e);
  check_bool (name ^ ": naive terminated") true (Chase.is_model n);
  let fixed = Instance.adom db in
  check_bool
    (name ^ ": hom-equivalent over the database")
    true
    (Hom.embeds_fixing fixed e.Chase.instance n.Chase.instance
    && Hom.embeds_fixing fixed n.Chase.instance e.Chase.instance)

let test_differential_full () =
  (* full tgds: unique least fixpoint, so the instances agree exactly *)
  let sigma = Families.transitive_closure in
  let db = Families.cycle 5 in
  let e = Chase.restricted sigma db in
  let n = Chase.restricted ~naive:true sigma db in
  check_bool "equal fixpoints" true
    (Instance.equal_facts e.Chase.instance n.Chase.instance);
  check_int "same fired count" n.Chase.fired e.Chase.fired

let test_differential_families () =
  check_restricted_equivalent "guarded_rewritable"
    (Families.guarded_rewritable 3)
    (Families.clique 3);
  check_restricted_equivalent "existential_chain"
    (Families.existential_chain 4)
    (inst ~schema:(Families.chain_schema 4) "E0(a,b).");
  check_restricted_equivalent "dl_lite_roles"
    (Families.dl_lite_roles 3)
    (Families.clique 2)

let test_differential_oblivious () =
  let sigma = Families.transitive_closure in
  let db = Families.cycle 4 in
  let e = Chase.oblivious sigma db in
  let n = Chase.oblivious ~naive:true sigma db in
  check_bool "engine terminated" true (Chase.is_model e);
  check_bool "naive terminated" true (Chase.is_model n);
  check_bool "equal fixpoints" true
    (Instance.equal_facts e.Chase.instance n.Chase.instance);
  check_int "same fired count" n.Chase.fired e.Chase.fired

let test_differential_budget () =
  (* diverging chase: both paths must report exhaustion *)
  let sigma = [ tgd "E(x,y) -> exists z. E(y,z)." ] in
  let db = inst ~schema:s "E(a,b)." in
  let budget = Tgd_engine.Budget.limits ~rounds:5 ~facts:20_000 in
  let e = Chase.restricted ~budget sigma db in
  let n = Chase.restricted ~naive:true ~budget sigma db in
  check_bool "engine exhausted" false (Chase.is_model e);
  check_bool "naive exhausted" false (Chase.is_model n);
  check_int "same rounds" n.Chase.rounds e.Chase.rounds;
  check_int "same growth" (Instance.fact_count n.Chase.instance)
    (Instance.fact_count e.Chase.instance)

let test_engine_stats_populated () =
  let sigma = Families.transitive_closure in
  let db = Families.cycle 4 in
  let e = Chase.restricted sigma db in
  check_bool "engine probes the index" true (e.Chase.stats.Stats.probes > 0);
  let n = Chase.restricted ~naive:true sigma db in
  check_int "naive never probes" 0 n.Chase.stats.Stats.probes;
  check_bool "naive scans instead" true (n.Chase.stats.Stats.scans > 0)

(* ---- memoized entailment ---- *)

let test_entailment_memo_hits () =
  Entailment.clear_memos ();
  let sigma = Families.transitive_closure in
  let goal = tgd "E(x,y), E(y,z), E(z,w) -> E(x,w)." in
  let renamed = tgd "E(p,q), E(q,r), E(r,t) -> E(p,t)." in
  check_answer "proved" Tgd_chase.Entailment.Proved (Entailment.entails sigma goal);
  check_answer "renamed query proved" Tgd_chase.Entailment.Proved
    (Entailment.entails sigma renamed);
  let answers, chases = Entailment.memo_sizes () in
  check_int "one answer entry despite two queries" 1 answers;
  check_int "one cached chase" 1 chases;
  Entailment.clear_memos ()

let test_entailment_shared_body_chase () =
  Entailment.clear_memos ();
  let sigma = [ tgd "E(x,y) -> P(x)."; tgd "E(x,y) -> T(y)." ] in
  (* three candidates over one body: the chase level should run once *)
  let candidates =
    [ tgd "E(x,y) -> P(x)."; tgd "E(x,y) -> T(y)."; tgd "E(x,y) -> P(y)." ]
  in
  let proved, rest = Entailment.entailed_subset sigma candidates in
  check_int "two entailed" 2 (List.length proved);
  check_int "one rejected" 1 (List.length rest);
  let _, chases = Entailment.memo_sizes () in
  check_int "single chase for the shared body" 1 chases;
  Entailment.clear_memos ()

let test_entailment_memo_off_matches () =
  let sigma = Families.guarded_rewritable 2 in
  let goal = tgd "R(x,y) -> P(x)." in
  let a = Entailment.entails ~memo:false sigma goal in
  let b = Entailment.entails ~memo:false ~naive:true sigma goal in
  check_answer "memoless engine = memoless naive" a b

(* ---- qcheck differentials ---- *)

let s2 = Schema.of_pairs [ ("E", 2); ("P", 1) ]

let gen_full_sigma : Tgd.t list QCheck.Gen.t =
 fun st ->
  List.init
    (1 + Random.State.int st 2)
    (fun _ -> Gen.random_full_tgd st s2 ~n:3 ~body_atoms:2 ~head_atoms:1)

let gen_instance : Instance.t QCheck.Gen.t =
 fun st ->
  Gen.random_instance st s2
    ~dom_size:(1 + Random.State.int st 3)
    ~density:(Random.State.float st 0.8)

let arb_full_case =
  QCheck.make
    ~print:(fun (sigma, i) ->
      String.concat " ;; " (List.map Tgd.to_string sigma)
      ^ " @ " ^ Instance.to_string i)
    (QCheck.Gen.pair gen_full_sigma gen_instance)

let prop_differential_full_qcheck =
  QCheck.Test.make
    ~name:"engine chase = naive chase (random full Σ, exact)" ~count:150
    arb_full_case (fun (sigma, i) ->
      let e = Chase.restricted sigma i in
      let n = Chase.restricted ~naive:true sigma i in
      Chase.is_model e && Chase.is_model n
      && Instance.equal_facts e.Chase.instance n.Chase.instance)

let gen_mixed_sigma : Tgd.t list QCheck.Gen.t =
 fun st ->
  Gen.random_full_tgd st s2 ~n:3 ~body_atoms:2 ~head_atoms:1
  :: List.init (Random.State.int st 2) (fun _ ->
         Gen.random_linear_tgd st s2 ~n:2 ~m:1)

let arb_mixed_case =
  QCheck.make
    ~print:(fun (sigma, i) ->
      String.concat " ;; " (List.map Tgd.to_string sigma)
      ^ " @ " ^ Instance.to_string i)
    (QCheck.Gen.pair gen_mixed_sigma gen_instance)

let prop_differential_mixed_qcheck =
  QCheck.Test.make
    ~name:"engine chase ≈ naive chase (random Σ, hom-equivalent)" ~count:100
    arb_mixed_case (fun (sigma, i) ->
      let e = Chase.restricted sigma i in
      let n = Chase.restricted ~naive:true sigma i in
      QCheck.assume (Chase.is_model e && Chase.is_model n);
      let fixed = Instance.adom i in
      Hom.embeds_fixing fixed e.Chase.instance n.Chase.instance
      && Hom.embeds_fixing fixed n.Chase.instance e.Chase.instance)

let suite =
  [ case "fact index: add and positional lookup" test_index_add_lookup;
    case "fact index: round-stamped snapshots" test_index_round_bounds;
    case "fact index: commit replays insertion order"
      test_index_commit_insertion_order;
    case "fact index: probe accounting" test_index_counts_probes;
    case "memo: find_or_add caches and counts" test_memo_find_or_add;
    case "memo: tgd keys collapse renamings" test_memo_tgd_key_renaming;
    case "memo: body keys collapse reorderings" test_memo_body_key;
    case "memo: sigma keys are set-like" test_memo_sigma_key;
    case "differential: transitive closure (exact)" test_differential_full;
    case "differential: workload families" test_differential_families;
    case "differential: oblivious chase" test_differential_oblivious;
    case "differential: budget exhaustion agrees" test_differential_budget;
    case "stats: engine probes, naive scans" test_engine_stats_populated;
    case "entailment: renamed queries share one chase" test_entailment_memo_hits;
    case "entailment: candidates share a body chase"
      test_entailment_shared_body_chase;
    case "entailment: memo off matches naive" test_entailment_memo_off_matches;
    QCheck_alcotest.to_alcotest prop_differential_full_qcheck;
    QCheck_alcotest.to_alcotest prop_differential_mixed_qcheck
  ]
