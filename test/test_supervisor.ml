(* Worker supervision: the pure state machine (Tgd_engine.Supervisor)
   under synthetic clocks — backoff ladder, breaker, wedge abandonment —
   and the live pool surviving worker deaths injected at the
   [pool.worker] chaos site: batches still complete with correct
   results, shutdown never hangs, and the health/stats counters agree
   with what happened. *)

open Tgd_engine
open Helpers

let policy =
  { Supervisor.max_restarts = 3;
    backoff_base_s = 1.0;
    backoff_cap_s = 4.0;
    wedge_timeout_s = Some 10.0;
    tick_s = 1e-3
  }

(* -- the state machine under a synthetic clock --------------------------- *)

let test_backoff_ladder () =
  let sup = Supervisor.create policy ~slots:2 in
  check_int "all alive at start" 2 (Supervisor.health sup).Supervisor.alive;
  check_bool "nothing to do" true (Supervisor.decide sup ~now:0. = []);
  Supervisor.note_death sup 0 ~now:0.;
  check_int "one alive" 1 (Supervisor.health sup).Supervisor.alive;
  (* first backoff is base = 1s: no respawn before it expires *)
  check_bool "respawn not yet due" true (Supervisor.decide sup ~now:0.5 = []);
  (match Supervisor.decide sup ~now:1.0 with
  | [ Supervisor.Respawn 0 ] -> ()
  | _ -> Alcotest.fail "expected Respawn 0 once the backoff expired");
  let gen = Supervisor.note_spawned sup 0 in
  check_int "generation bumped" 1 gen;
  check_int "generation readable" 1 (Supervisor.generation sup 0);
  check_bool "acted: nothing left to do" true
    (Supervisor.decide sup ~now:1.0 = []);
  (* second death on the same slot doubles the backoff *)
  Supervisor.note_death sup 0 ~now:2.0;
  check_bool "2s backoff pending" true (Supervisor.decide sup ~now:3.5 = []);
  (match Supervisor.decide sup ~now:4.1 with
  | [ Supervisor.Respawn 0 ] -> ()
  | _ -> Alcotest.fail "expected the doubled backoff to expire at 4s");
  ignore (Supervisor.note_spawned sup 0);
  (* third death: backoff would be 4s (cap); the cap binds from here on *)
  Supervisor.note_death sup 0 ~now:5.0;
  check_bool "capped backoff pending" true (Supervisor.decide sup ~now:8.9 = []);
  match Supervisor.decide sup ~now:9.0 with
  | [ Supervisor.Respawn 0 ] -> ()
  | _ -> Alcotest.fail "expected capped backoff to expire at 9s"

let test_breaker_trips_after_budget () =
  let sup = Supervisor.create policy ~slots:1 in
  (* burn the whole restart budget *)
  let now = ref 0. in
  for _ = 1 to policy.Supervisor.max_restarts do
    Supervisor.note_death sup 0 ~now:!now;
    now := !now +. 100.;
    (match Supervisor.decide sup ~now:!now with
    | [ Supervisor.Respawn 0 ] -> ignore (Supervisor.note_spawned sup 0)
    | _ -> Alcotest.fail "expected a respawn within budget")
  done;
  check_int "restart budget consumed" policy.Supervisor.max_restarts
    (Supervisor.health sup).Supervisor.restarts;
  (* one more death: the decision is to trip, not to respawn *)
  Supervisor.note_death sup 0 ~now:!now;
  (match Supervisor.decide sup ~now:(!now +. 100.) with
  | [ Supervisor.Trip_breaker ] -> Supervisor.trip sup
  | _ -> Alcotest.fail "expected Trip_breaker after the budget");
  check_bool "tripped" true (Supervisor.tripped sup);
  check_bool "health reports it" true
    (Supervisor.health sup).Supervisor.breaker_tripped;
  (* tripped: no more respawns, ever *)
  check_bool "no respawns post-trip" true
    (Supervisor.decide sup ~now:(!now +. 1000.) = [])

let test_wedge_abandon () =
  let sup = Supervisor.create policy ~slots:2 in
  Supervisor.note_busy sup 1 ~now:0.;
  check_bool "busy within timeout" true (Supervisor.decide sup ~now:5. = []);
  (match Supervisor.decide sup ~now:11. with
  | [ Supervisor.Abandon 1 ] -> ()
  | _ -> Alcotest.fail "expected Abandon for the wedged slot");
  Supervisor.note_wedged sup 1 ~now:11.;
  let h = Supervisor.health sup in
  check_int "wedge counted" 1 h.Supervisor.wedged;
  check_int "wedge is also a death" 1 h.Supervisor.deaths;
  (* abandons must keep flowing after the breaker trips (joins depend
     on wedged chunks failing), respawns must not *)
  Supervisor.trip sup;
  Supervisor.note_busy sup 0 ~now:20.;
  match Supervisor.decide sup ~now:40. with
  | [ Supervisor.Abandon 0 ] -> ()
  | _ -> Alcotest.fail "expected Abandon even with the breaker tripped"

let test_busy_then_idle_never_wedges () =
  let sup = Supervisor.create policy ~slots:1 in
  Supervisor.note_busy sup 0 ~now:0.;
  Supervisor.note_idle sup 0;
  check_bool "idle slot never wedges" true (Supervisor.decide sup ~now:100. = [])

(* -- the live pool under injected worker deaths -------------------------- *)

let kill_workers ?(seed = 6) p =
  { Chaos.default_config with Chaos.seed; raise_p = p }

let test_batch_survives_worker_deaths () =
  (* seed 6 @ raise_p 0.3 is mined so that the [pool.chunk] stream stays
     clean for this batch's 6 chunks while the [pool.worker] stream kills
     3 workers mid-claim — so the only faults exercised are deaths, and
     the requeue-on-death path must deliver a complete, ordered result *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let input = List.init 48 Fun.id in
      let expected = List.map (fun x -> (3 * x) + 1) input in
      let result =
        Chaos.with_config (kill_workers 0.3) (fun () ->
            Pool.parallel_map pool ~chunk:8
              (fun x -> (3 * x) + 1)
              (List.to_seq input))
      in
      check_bool "all items present and in order despite deaths" true
        (result = expected);
      (* respawns happen on monitor ticks; give it a beat before reading *)
      Unix.sleepf 0.05;
      let h = Pool.health pool in
      check_bool "deaths were observed" true (h.Supervisor.deaths >= 1);
      check_bool "deaths led to restarts" true (h.Supervisor.restarts >= 1);
      check_bool "breaker untouched" false h.Supervisor.breaker_tripped;
      (* chaos off again: the pool keeps working *)
      check_bool "pool reusable after the storm" true
        (Pool.parallel_map pool (fun x -> x * x) (Seq.init 20 Fun.id)
        = List.init 20 (fun x -> x * x)))

let test_certain_death_trips_breaker_no_hang () =
  (* raise_p = 1.0: every worker dies on its first claim, so the restart
     budget burns down, the breaker trips, and the monitor rescue-drains
     the queue inline — where the chunk-site fault fires and fails the
     batch with a typed Injected.  The contract here is liveness plus
     degradation: the join returns (no hang), the breaker is tripped,
     and the pool still answers batches sequentially afterwards. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      (match
         Chaos.with_config (kill_workers 1.0) (fun () ->
             Pool.parallel_map pool ~chunk:8 string_of_int
               (Seq.init 64 Fun.id))
       with
      | _ -> Alcotest.fail "certain chunk faults cannot succeed"
      | exception Chaos.Injected _ -> ());
      let h = Pool.health pool in
      check_bool "breaker tripped" true h.Supervisor.breaker_tripped;
      check_bool "restart budget was exhausted" true
        (h.Supervisor.restarts >= Supervisor.default_policy.Supervisor.max_restarts);
      (* degraded mode: later batches run sequentially, still correctly *)
      check_bool "degraded batch correct" true
        (Pool.parallel_map pool (fun x -> x + 1) (Seq.init 10 Fun.id)
        = List.init 10 (fun x -> x + 1)))

let test_restarts_surface_in_global_stats () =
  let before = (Stats.global ()).Stats.restarts in
  Pool.with_pool ~jobs:3 (fun pool ->
      ignore
        (Chaos.with_config (kill_workers 0.3) (fun () ->
             Pool.parallel_map pool ~chunk:8 succ (Seq.init 48 Fun.id)));
      (* restarts are folded into Stats at batch joins; wait for the
         monitor to respawn the dead workers, then join a clean batch *)
      Unix.sleepf 0.05;
      ignore (Pool.parallel_map pool succ (Seq.init 4 Fun.id)));
  check_bool "Stats.global restarts advanced" true
    ((Stats.global ()).Stats.restarts > before)

let test_shutdown_after_deaths_no_hang () =
  (* exercised repeatedly across fault schedules: create, kill workers,
     shut down.  Batches may fail (typed) — with_pool returning at all is
     the assertion; the alcotest timeout is the hang detector. *)
  for seed = 0 to 4 do
    Pool.with_pool ~jobs:3 (fun pool ->
        try
          ignore
            (Chaos.with_config
               { Chaos.default_config with Chaos.seed; raise_p = 0.7 }
               (fun () ->
                 Pool.parallel_map pool ~chunk:1 succ (Seq.init 30 Fun.id)))
        with Chaos.Injected _ -> ())
  done

let test_wedged_worker_abandons_chunk () =
  let wedge_policy =
    { Supervisor.default_policy with
      Supervisor.wedge_timeout_s = Some 0.05;
      tick_s = 5e-3
    }
  in
  Pool.with_pool ~policy:wedge_policy ~jobs:2 (fun pool ->
      match
        Pool.parallel_map pool ~chunk:1
          (fun x ->
            if x = 3 then Unix.sleepf 1.0;
            x)
          (Seq.init 8 Fun.id)
      with
      | _ -> Alcotest.fail "wedged chunk must fail the batch"
      | exception Chaos.Injected site ->
        check_bool "fault names the wedge" true
          (String.length site >= 11 && String.sub site 0 11 = "pool.wedged");
        check_bool "wedge counted" true
          ((Pool.health pool).Supervisor.wedged >= 1))

let suite =
  [ case "backoff ladder under a synthetic clock" test_backoff_ladder;
    case "breaker trips when the restart budget is gone"
      test_breaker_trips_after_budget;
    case "wedged slots are abandoned" test_wedge_abandon;
    case "idle slots never wedge" test_busy_then_idle_never_wedges;
    case "batches survive random worker deaths"
      test_batch_survives_worker_deaths;
    case "certain death trips the breaker without hanging"
      test_certain_death_trips_breaker_no_hang;
    case "restarts surface in Stats.global" test_restarts_surface_in_global_stats;
    case "shutdown after deaths never hangs" test_shutdown_after_deaths_no_hang;
    slow_case "wedged worker abandons its chunk"
      test_wedged_worker_abandons_chunk
  ]
