open Tgd_syntax
open Tgd_instance
open Tgd_chase
open Helpers
module Budget = Tgd_engine.Budget

let s = schema [ ("E", 2); ("T", 2); ("P", 1) ]

let tc = tgds "E(x,y) -> T(x,y).\nT(x,y), E(y,z) -> T(x,z)."

let chain n =
  inst ~schema:s
    (String.concat " "
       (List.init n (fun i -> Printf.sprintf "E(c%d,c%d)." i (i + 1))))

let saturate ?budget sigma i = Budget.value (Datalog.saturate ?budget sigma i)

let test_transitive_closure () =
  let result = saturate tc (chain 4) in
  (* 4 edges → T has 4+3+2+1 = 10 pairs *)
  check_int "closure size" 10
    (Fact.Set.cardinal (Instance.facts_of result (Relation.make "T" 2)));
  check_bool "model" true (Satisfaction.tgds result tc);
  check_bool "contains input" true (Instance.subset (chain 4) result)

let test_agrees_with_chase () =
  let st = Tgd_workload.Gen.rng 17 in
  for _ = 1 to 15 do
    let sigma =
      List.init 2 (fun _ ->
          Tgd_workload.Gen.random_full_tgd st s ~n:3 ~body_atoms:2 ~head_atoms:2)
    in
    let i = Tgd_workload.Gen.random_instance st s ~dom_size:3 ~density:0.3 in
    let datalog = saturate sigma i in
    let chase = (Chase.restricted sigma i).Chase.instance in
    check_bool "same fixpoint" true (Instance.equal_facts datalog chase)
  done

let test_rejects_existentials () =
  Alcotest.check_raises "existential rejected"
    (Invalid_argument "Datalog.saturate: rules must be existential-free")
    (fun () ->
      ignore (Datalog.saturate [ tgd "P(x) -> exists z. E(x,z)." ] (chain 1)))

let test_max_facts_guard () =
  (* the fact cap no longer raises: it surfaces as a typed truncation whose
     partial instance is a sound prefix of the fixpoint *)
  match Datalog.saturate ~budget:(Budget.limits ~rounds:max_int ~facts:3) tc (chain 4) with
  | Budget.Truncated { reason = Budget.Facts; partial; _ } ->
    check_bool "partial is sound" true
      (Instance.subset partial (saturate tc (chain 4)))
  | Budget.Truncated { reason; _ } ->
    Alcotest.failf "wrong truncation reason: %a" Budget.pp_exhaustion reason
  | Budget.Complete _ -> Alcotest.fail "expected the fact cap to trip"

let test_stats () =
  let _, stats = Budget.value (Datalog.saturate_with_stats tc (chain 4)) in
  (* the longest path has length 4: derivations stratify over ~4 rounds *)
  check_bool "rounds bounded by path length + 1" true
    (stats.Datalog.rounds >= 4 && stats.Datalog.rounds <= 6);
  check_int "derived" 10 stats.Datalog.derived

let test_entails () =
  let proved g = Datalog.entails tc g = Entailment.Proved in
  check_bool "chain entailment" true
    (proved (tgd "E(x,y), E(y,z), E(z,w) -> T(x,w)."));
  check_bool "no reverse" false (proved (tgd "T(x,y) -> E(x,y)."));
  check_bool "self" true (proved (tgd "E(x,y) -> T(x,y)."));
  (* agreement with the chase-based engine *)
  let goals =
    [ tgd "E(x,y), E(y,z) -> T(x,z)."; tgd "T(x,y) -> T(y,x).";
      tgd "E(x,x) -> T(x,x)." ]
  in
  List.iter
    (fun g ->
      let expected =
        Entailment.entails tc g = Entailment.Proved
      in
      check_bool (Tgd.to_string g) expected (proved g))
    goals

let test_multi_atom_heads () =
  let sigma = [ tgd "P(x) -> E(x,x), T(x,x)." ] in
  let result = saturate sigma (inst ~schema:s "P(a).") in
  check_int "both facts" 3 (Instance.fact_count result)

let test_empty_instance () =
  let result = saturate tc (Instance.empty s) in
  check_bool "stays empty" true (Instance.is_empty result)

let suite =
  [ case "transitive closure" test_transitive_closure;
    case "agrees with the chase (random)" test_agrees_with_chase;
    case "rejects existentials" test_rejects_existentials;
    case "max_facts guard (typed truncation)" test_max_facts_guard;
    case "stats" test_stats;
    case "entailment" test_entails;
    case "multi-atom heads" test_multi_atom_heads;
    case "empty instance" test_empty_instance
  ]
