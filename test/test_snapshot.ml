(* Durable checkpoints (Tgd_engine.Snapshot): save ∘ load is the identity
   on the engine's real payload shapes, every corruption mode is Rejected
   with a diagnosis (never a crash, never silently wrong state), and the
   backup generation rescues a damaged current file. *)

open Tgd_syntax
open Tgd_instance
open Tgd_engine
open Helpers
module Chase = Tgd_chase.Chase
module Entailment = Tgd_chase.Entailment
module Rewrite = Tgd_core.Rewrite

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tgd_snap_test_%d_%d" (Unix.getpid ()) !dir_counter)

let with_store ?version ?keep_backup ?(kind = "test-payload") f =
  let dir = fresh_dir () in
  let store = Snapshot.create ?version ?keep_backup ~dir ~name:"t" ~kind () in
  Fun.protect ~finally:(fun () -> Snapshot.remove store) (fun () -> f dir store)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* -- the basic contract ------------------------------------------------- *)

let test_fresh_then_roundtrip () =
  with_store (fun _dir store ->
      (match Snapshot.load store with
      | Snapshot.Fresh -> ()
      | _ -> Alcotest.fail "no file yet: expected Fresh");
      Snapshot.save store (42, "hello");
      (match Snapshot.load store with
      | Snapshot.Resumed (42, "hello") -> ()
      | _ -> Alcotest.fail "expected Resumed (42, \"hello\")");
      Snapshot.remove store;
      match Snapshot.load store with
      | Snapshot.Fresh -> ()
      | _ -> Alcotest.fail "after remove: expected Fresh")

let test_save_counts_in_stats () =
  with_store (fun _dir store ->
      let before = (Stats.global ()).Stats.snapshots in
      Snapshot.save store [ 1; 2; 3 ];
      Snapshot.save store [ 4; 5; 6 ];
      check_bool "two snapshots counted" true
        ((Stats.global ()).Stats.snapshots >= before + 2))

let test_kind_and_version_mismatch () =
  with_store ~kind:"chase-state" (fun dir store ->
      Snapshot.save store 1;
      let other = Snapshot.create ~dir ~name:"t" ~kind:"rewrite-sweep" () in
      (match Snapshot.load other with
      | Snapshot.Rejected (Snapshot.Kind_mismatch _ :: _) -> ()
      | _ -> Alcotest.fail "expected Kind_mismatch rejection");
      let v2 =
        Snapshot.create ~version:2 ~dir ~name:"t" ~kind:"chase-state" ()
      in
      match Snapshot.load v2 with
      | Snapshot.Rejected (Snapshot.Version_mismatch _ :: _) -> ()
      | _ -> Alcotest.fail "expected Version_mismatch rejection")

(* -- corruption modes --------------------------------------------------- *)

let test_truncated_file_rejected () =
  with_store ~keep_backup:false (fun _dir store ->
      Snapshot.save store (Array.init 100 string_of_int);
      let full = read_file (Snapshot.path store) in
      (* cut the payload short at several depths, incl. inside the header *)
      [ String.length full - 7; String.length full / 2; 30; 9 ]
      |> List.iter (fun keep ->
             write_file (Snapshot.path store) (String.sub full 0 keep);
             match Snapshot.load store with
             | Snapshot.Rejected _ -> ()
             | Snapshot.Resumed _ ->
               Alcotest.failf "truncated to %d bytes: must not resume" keep
             | Snapshot.Fresh ->
               Alcotest.failf "truncated to %d bytes: must not look fresh"
                 keep))

let test_bit_flip_rejected () =
  with_store ~keep_backup:false (fun _dir store ->
      Snapshot.save store (List.init 50 (fun i -> (i, float_of_int i)));
      let full = read_file (Snapshot.path store) in
      (* flip one bit in the marshalled payload: digest must catch it *)
      let body_start = String.length full - 20 in
      let corrupted = Bytes.of_string full in
      Bytes.set corrupted body_start
        (Char.chr (Char.code (Bytes.get corrupted body_start) lxor 0x40));
      write_file (Snapshot.path store) (Bytes.to_string corrupted);
      match Snapshot.load store with
      | Snapshot.Rejected errors ->
        check_bool "diagnosed as checksum mismatch" true
          (List.exists
             (function Snapshot.Checksum_mismatch _ -> true | _ -> false)
             errors)
      | _ -> Alcotest.fail "bit flip must reject")

let test_garbage_magic_rejected () =
  with_store ~keep_backup:false (fun _dir store ->
      Snapshot.save store "x";
      write_file (Snapshot.path store) "not a snapshot at all\n";
      match Snapshot.load store with
      | Snapshot.Rejected (Snapshot.Bad_magic _ :: _) -> ()
      | _ -> Alcotest.fail "expected Bad_magic rejection")

let test_backup_rescues_corrupt_current () =
  with_store (fun _dir store ->
      Snapshot.save store "generation-1";
      Snapshot.save store "generation-2";
      (* current holds gen-2, backup holds gen-1; smash current *)
      write_file (Snapshot.path store) "garbage";
      match Snapshot.load store with
      | Snapshot.Resumed "generation-1" -> ()
      | Snapshot.Resumed _ -> Alcotest.fail "wrong generation resumed"
      | _ -> Alcotest.fail "backup generation must rescue the load")

let test_both_generations_corrupt () =
  with_store (fun _dir store ->
      Snapshot.save store "a";
      Snapshot.save store "b";
      write_file (Snapshot.path store) "garbage";
      write_file (Snapshot.backup_path store) "more garbage";
      match Snapshot.load store with
      | Snapshot.Rejected errors ->
        check_int "one diagnosis per generation" 2 (List.length errors)
      | _ -> Alcotest.fail "expected Rejected with both diagnoses")

(* -- qcheck: round-trip on the engine's real payload shapes ------------- *)

let s2 = schema [ ("E", 2); ("P", 1) ]

let gen_instance : Instance.t QCheck.Gen.t =
 fun st ->
  Tgd_workload.Gen.random_instance st s2
    ~dom_size:(1 + Random.State.int st 4)
    ~density:(Random.State.float st 0.8)

let gen_chase_checkpoint : Chase.checkpoint QCheck.Gen.t =
 fun st ->
  { Chase.chk_instance = gen_instance st;
    chk_rounds = Random.State.int st 100;
    chk_fired = Random.State.int st 1000
  }

let gen_sweep_checkpoint : Rewrite.checkpoint QCheck.Gen.t =
 fun st ->
  let n = Random.State.int st 20 in
  let answers =
    [| Entailment.Proved; Entailment.Disproved; Entailment.Unknown |]
  in
  { Rewrite.cursor = n;
    screened_prefix =
      List.init n (fun _ ->
          ( Tgd_workload.Gen.random_full_tgd st s2 ~n:3 ~body_atoms:2
              ~head_atoms:1,
            answers.(Random.State.int st 3) ))
  }

let prop_chase_checkpoint_roundtrip =
  QCheck.Test.make ~name:"save ∘ load = id on chase checkpoints" ~count:30
    (QCheck.make gen_chase_checkpoint)
    (fun cp ->
      with_store ~kind:Chase.snapshot_kind (fun _dir store ->
          Snapshot.save store cp;
          match Snapshot.load store with
          | Snapshot.Resumed cp' ->
            Instance.equal cp.Chase.chk_instance cp'.Chase.chk_instance
            && cp.Chase.chk_rounds = cp'.Chase.chk_rounds
            && cp.Chase.chk_fired = cp'.Chase.chk_fired
          | _ -> false))

let prop_sweep_checkpoint_roundtrip =
  QCheck.Test.make ~name:"save ∘ load = id on sweep checkpoints" ~count:30
    (QCheck.make gen_sweep_checkpoint)
    (fun cp ->
      with_store ~kind:Rewrite.snapshot_kind (fun _dir store ->
          Snapshot.save store cp;
          match Snapshot.load store with
          | Snapshot.Resumed cp' ->
            cp.Rewrite.cursor = cp'.Rewrite.cursor
            && List.for_all2
                 (fun (t, a) (t', a') -> Tgd.equal t t' && a = a')
                 cp.Rewrite.screened_prefix cp'.Rewrite.screened_prefix
          | _ -> false))

let prop_truncation_never_crashes =
  QCheck.Test.make ~name:"any prefix of a snapshot file loads without raising"
    ~count:60
    QCheck.(make Gen.(int_bound 400))
    (fun keep ->
      with_store ~keep_backup:false (fun _dir store ->
          Snapshot.save store (String.make 200 'x');
          let full = read_file (Snapshot.path store) in
          let keep = min keep (String.length full) in
          write_file (Snapshot.path store) (String.sub full 0 keep);
          match Snapshot.load store with
          | Snapshot.Resumed v -> keep = String.length full && v = String.make 200 'x'
          | Snapshot.Rejected _ -> keep < String.length full
          | Snapshot.Fresh -> false))

let suite =
  [ case "fresh, round-trip, remove" test_fresh_then_roundtrip;
    case "saves counted in stats" test_save_counts_in_stats;
    case "kind and version mismatches reject" test_kind_and_version_mismatch;
    case "truncated file rejects" test_truncated_file_rejected;
    case "bit flip rejects with checksum diagnosis" test_bit_flip_rejected;
    case "garbage magic rejects" test_garbage_magic_rejected;
    case "backup rescues corrupt current" test_backup_rescues_corrupt_current;
    case "both generations corrupt" test_both_generations_corrupt;
    QCheck_alcotest.to_alcotest prop_chase_checkpoint_roundtrip;
    QCheck_alcotest.to_alcotest prop_sweep_checkpoint_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncation_never_crashes
  ]
