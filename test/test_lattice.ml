(* The termination lattice and its proof-carrying certificates: per-notion
   classification, stratified composition, the independent certificate
   checker (round-trips and tamper rejection), and the implication chain
   WA ⇒ JA ⇒ SWA ⇒ MSA ⇒ MFA. *)

open Tgd_analysis
open Helpers

(* Fails WA (special edge on the S→T→S cycle) yet MSA-certifiable: the
   critical-instance saturation closes after one marker generation. *)
let msa_wins = "S(x) -> exists z. T(x,z). T(x,y) -> T(y,x). T(y,y) -> S(y)."

(* Two disjoint renamed copies of [msa_wins]: the relation-level
   precedence splits them into two strata. *)
let two_copies =
  "S1(x) -> exists z. T1(x,z). T1(x,y) -> T1(y,x). T1(y,y) -> S1(y). \
   S2(x) -> exists z. T2(x,z). T2(x,y) -> T2(y,x). T2(y,y) -> S2(y)."

let notion_of sigma =
  Option.map (fun (n, _) -> Termination.cert_name n) (Lattice.classify sigma)

let check_notion name expected sigma =
  Alcotest.(check (option string)) name expected (notion_of sigma)

let roundtrip name sigma cert =
  match Certcheck.verify sigma (Cert.to_string sigma cert) with
  | Ok n ->
    check_bool (name ^ ": notion preserved") true
      (Termination.cert_rank n = Termination.cert_rank (Cert.notion cert))
  | Error e -> Alcotest.failf "%s: checker rejected own certificate: %s" name e

let classified_cert sigma =
  match Lattice.classify sigma with
  | Some (_, cert) -> cert
  | None -> Alcotest.fail "expected a certificate"

(* ---- classification ---- *)

let test_classify_levels () =
  check_notion "wa" (Some "weakly-acyclic")
    (tgds "P(x) -> exists z. E(x,z).");
  check_notion "ja beyond wa" (Some "jointly-acyclic")
    (tgds "A(x,y), A(y,x) -> exists z. A(x,z).");
  check_notion "msa beyond swa" (Some "model-summarising-acyclic")
    (tgds msa_wins);
  check_notion "divergent: nothing" None (tgds "E(x,y) -> exists z. E(y,z).");
  check_notion "empty set" (Some "weakly-acyclic") []

let test_profile_msa_wins () =
  let p = Lattice.profile (tgds msa_wins) in
  check_bool "wa fails" false (Lattice.holds p.Lattice.wa);
  check_bool "ja fails" false (Lattice.holds p.Lattice.ja);
  check_bool "swa fails" false (Lattice.holds p.Lattice.swa);
  check_bool "msa holds" true (Lattice.holds p.Lattice.msa);
  check_bool "mfa holds" true (Lattice.holds p.Lattice.mfa);
  check_bool "single stratum" false (Lattice.holds p.Lattice.stratification);
  (match p.Lattice.certified with
  | Some (Termination.Model_summarising, Cert.Model_summarising _) -> ()
  | _ -> Alcotest.fail "expected an MSA certificate")

let test_profile_divergent () =
  let p = Lattice.profile (tgds "E(x,y) -> exists z. E(y,z).") in
  check_bool "mfa refuted" true
    (match p.Lattice.mfa with Lattice.Fails _ -> true | _ -> false);
  check_bool "uncertified" true (p.Lattice.certified = None)

let test_covers_chain () =
  (* covers is cumulative: each profile covers its own level and
     everything above it in the lattice. *)
  let covers_all p l = List.for_all (Lattice.covers p) l in
  let wa_p = Lattice.profile (tgds "P(x) -> exists z. E(x,z).") in
  check_bool "wa covers the whole chain" true
    (covers_all wa_p
       Termination.
         [ Weakly_acyclic; Jointly_acyclic; Super_weakly_acyclic;
           Model_summarising; Model_faithful ]);
  let msa_p = Lattice.profile (tgds msa_wins) in
  check_bool "msa covers msa and mfa" true
    (covers_all msa_p Termination.[ Model_summarising; Model_faithful ]);
  check_bool "msa does not cover wa" false
    (Lattice.covers msa_p Termination.Weakly_acyclic);
  check_bool "msa does not cover swa" false
    (Lattice.covers msa_p Termination.Super_weakly_acyclic)

(* ---- stratified composition ---- *)

let strat_limits = { Lattice.default_limits with Lattice.facts = 6 }

let test_stratified_beats_flat () =
  let sigma = tgds two_copies in
  (* under the tight cap the whole-set critical chase exhausts... *)
  let p = Lattice.profile ~limits:strat_limits sigma in
  check_bool "whole-set msa unknown" true
    (match p.Lattice.msa with Lattice.Unknown _ -> true | _ -> false);
  check_bool "whole-set mfa unknown" true
    (match p.Lattice.mfa with Lattice.Unknown _ -> true | _ -> false);
  (* ...but each stratum certifies on its own *)
  check_bool "stratification holds" true
    (Lattice.holds p.Lattice.stratification);
  check_int "two strata" 2 (List.length p.Lattice.strata);
  match Lattice.classify ~limits:strat_limits sigma with
  | Some (Termination.Stratified, Cert.Stratified { strata; subs }) ->
    check_int "partition size" 2 (List.length strata);
    check_int "one sub-certificate per stratum" 2 (List.length subs);
    check_bool "rules partitioned" true
      (List.sort compare (List.concat strata) = [ 0; 1; 2; 3; 4; 5 ])
  | _ -> Alcotest.fail "expected a stratified certificate"

let test_stratified_cert_roundtrips () =
  let sigma = tgds two_copies in
  roundtrip "stratified" sigma
    (match Lattice.classify ~limits:strat_limits sigma with
    | Some (_, cert) -> cert
    | None -> Alcotest.fail "expected a stratified certificate")

(* ---- certificate round-trips ---- *)

let test_cert_roundtrips () =
  let wa = tgds "P(x) -> exists z. E(x,z). E(x,y) -> Q(y)." in
  roundtrip "weak" wa (classified_cert wa);
  let ja = tgds "A(x,y), A(y,x) -> exists z. A(x,z)." in
  roundtrip "joint" ja (classified_cert ja);
  let msa = tgds msa_wins in
  roundtrip "msa" msa (classified_cert msa);
  (* MFA: take the profile's mfa certificate directly *)
  (match (Lattice.profile msa).Lattice.certified with
  | Some _ -> ()
  | None -> Alcotest.fail "msa_wins should certify");
  let p = Lattice.profile msa in
  check_bool "mfa holds on msa_wins" true (Lattice.holds p.Lattice.mfa)

let test_mfa_cert_roundtrips () =
  (* force the lattice past MSA by checking MFA directly via profile on a
     set where both hold, then rebuild the Model_faithful certificate
     from the producer's witness *)
  let sigma = tgds msa_wins in
  match Critical_chase.mfa sigma with
  | Critical_chase.Holds w ->
    roundtrip "mfa" sigma
      (Cert.Model_faithful
         { model = w.Critical_chase.mfa_model;
           creation = w.Critical_chase.mfa_creation
         })
  | _ -> Alcotest.fail "mfa should hold on msa_wins"

let test_superweak_cert_roundtrips () =
  (* exercise the checker's super-weak path on a set the place graph
     certifies with non-trivial move sets: the first two rules have empty
     frontiers (their nulls trigger nothing), the third is full *)
  let sigma =
    tgds
      "G1(x), G2(y) -> exists z. G1(z). G0(x), G0(y) -> exists z. G0(z). \
       G0(x), G1(y) -> G1(x)."
  in
  match Placegraph.analyse sigma with
  | Ok w ->
    let moves =
      List.map
        (fun (i, places) ->
          ( i,
            List.map
              (fun p -> Placegraph.(p.rule, p.atom, p.pos))
              places ))
        w.Placegraph.moves
    in
    roundtrip "super-weak" sigma (Cert.Super_weak { moves })
  | Error _ -> Alcotest.fail "set should be super-weakly acyclic"

(* ---- tamper rejection ---- *)

let rejects name sigma text =
  match Certcheck.verify sigma text with
  | Ok _ -> Alcotest.failf "%s: checker accepted a bad certificate" name
  | Error _ -> ()

let test_certcheck_rejects_tampering () =
  let sigma = tgds msa_wins in
  let cert = classified_cert sigma in
  let text = Cert.to_string sigma cert in
  (* bind to the wrong rule set *)
  rejects "wrong sigma" (tgds "P(x) -> exists z. E(x,z).") text;
  (* drop the trailing end *)
  rejects "truncated" sigma (String.sub text 0 (String.length text - 4));
  (* flip one model fact: the critical-instance base must be present *)
  let mutated =
    String.concat "\n"
      (List.map
         (fun line ->
           if line = "fact T i:0 i:0" then "fact T i:0 i:1" else line)
         (String.split_on_char '\n' text))
  in
  check_bool "mutation applied" true (mutated <> text);
  rejects "mutated fact" sigma mutated;
  (* claim a stronger notion than the payload supports *)
  let relabeled =
    String.concat "\n"
      (List.map
         (fun line -> if line = "notion msa" then "notion mfa" else line)
         (String.split_on_char '\n' text))
  in
  if relabeled <> text then rejects "relabeled notion" sigma relabeled

let test_certcheck_rejects_cyclic_weak_claim () =
  (* a Weak certificate over a non-WA set: the checker re-derives the
     dependency graph and must find the special edge on a cycle *)
  let sigma = tgds "E(x,y) -> exists z. E(y,z)." in
  let edges = Termination.dependency_graph sigma in
  let cert =
    Cert.Weak
      { edges =
          List.map
            (fun e ->
              Termination.(
                ( fst e.source, snd e.source, fst e.target, snd e.target,
                  e.special )))
            edges
      }
  in
  rejects "cyclic weak claim" sigma (Cert.to_string sigma cert)

(* ---- strategy and promotion ---- *)

let test_strategy_deep () =
  let sigma = tgds msa_wins in
  let shallow = Strategy.decide sigma in
  check_bool "shallow: no certificate" true (shallow.Strategy.cert = None);
  check_bool "shallow: budgeted" true
    (shallow.Strategy.engine = Strategy.Budgeted_chase);
  let deep = Strategy.decide ~deep:true sigma in
  check_bool "deep: certified" true
    (deep.Strategy.cert = Some Termination.Model_summarising);
  check_bool "deep: chase to completion" true
    (deep.Strategy.engine = Strategy.Chase_to_completion);
  check_bool "deep: moderate cost" true
    (Strategy.predicted_cost deep = Strategy.Moderate)

let test_lattice_promotes_round_truncation () =
  (* msa_wins is certified only by the lattice — a round-capped restricted
     chase must still promote to a definite model *)
  let sigma = tgds msa_wins in
  let schema = Tgd_core.Rewrite.schema_of sigma in
  let i = inst ~schema "S(a). S(b)." in
  let budget = Tgd_engine.Budget.limits ~rounds:1 ~facts:10_000 in
  let r = Tgd_chase.Chase.restricted ~budget sigma i in
  check_bool "promoted to a model" true (Tgd_chase.Chase.is_model r)

(* ---- analyzer integration ---- *)

let test_analyze_consumes_lattice () =
  let r = Analyze.run (tgds msa_wins) in
  check_bool "strategy upgraded" true
    (r.Analyze.strategy.Strategy.cert = Some Termination.Model_summarising);
  (match Analyze.certificate r with
  | Some (Cert.Model_summarising _) -> ()
  | _ -> Alcotest.fail "expected the MSA certificate");
  let j = Analyze.to_json r in
  let has needle =
    let rec find i =
      i + String.length needle <= String.length j
      && (String.sub j i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  check_bool "schema version 2" true (has "\"schema_version\":2");
  check_bool "lattice object" true (has "\"lattice\":{\"weak\":");
  check_bool "msa verdict" true (has "\"msa\":{\"verdict\":\"holds\"}");
  check_bool "no lattice warning" false
    (List.exists
       (fun d -> d.Diagnostic.code = "no-termination-certificate")
       r.Analyze.diagnostics)

(* ---- properties ---- *)

let qcheck_implication_chain =
  (* the genuine lattice shape: WA implies both JA and SWA (which are
     incomparable with each other), each of those implies MSA, and MSA
     implies MFA — Unknown tolerated for the budgeted notions *)
  QCheck.Test.make ~count:80 ~name:"lattice implications WA⇒{JA,SWA}⇒MSA⇒MFA"
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let st = Tgd_workload.Gen.rng (1 + s1 + (1000 * s2)) in
      let schema =
        Tgd_workload.Gen.random_schema st ~relations:3 ~max_arity:2
      in
      let sigma =
        List.init 3 (fun _ ->
            Tgd_workload.Gen.random_tgd st schema ~n:3 ~m:1 ~body_atoms:2
              ~head_atoms:1)
      in
      let p = Lattice.profile sigma in
      let implies a b =
        (not (Lattice.holds a))
        || Lattice.holds b
        || match b with Lattice.Unknown _ -> true | _ -> false
      in
      implies p.Lattice.wa p.Lattice.ja
      && implies p.Lattice.wa p.Lattice.swa
      && implies p.Lattice.ja p.Lattice.msa
      && implies p.Lattice.swa p.Lattice.msa
      && implies p.Lattice.msa p.Lattice.mfa)

let qcheck_lattice_certified_terminates =
  (* validation sweep: a lattice certificate (at any level) really does
     bound the restricted chase — a generous fact budget must reach a
     model.  Complements the WA/JA-only sweep in test_analysis. *)
  QCheck.Test.make ~count:40 ~name:"lattice certificate implies termination"
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let st = Tgd_workload.Gen.rng (7 + s1 + (1000 * s2)) in
      let schema =
        Tgd_workload.Gen.random_schema st ~relations:3 ~max_arity:2
      in
      let sigma =
        List.init 3 (fun _ ->
            Tgd_workload.Gen.random_tgd st schema ~n:3 ~m:1 ~body_atoms:2
              ~head_atoms:1)
      in
      match Lattice.classify sigma with
      | None -> QCheck.assume_fail ()
      | Some (_, cert) ->
        (* every emitted certificate passes the independent checker *)
        (match Certcheck.verify sigma (Cert.to_string sigma cert) with
        | Ok _ -> ()
        | Error e -> QCheck.Test.fail_reportf "checker rejected: %s" e);
        let i =
          Tgd_workload.Gen.random_instance st schema ~dom_size:2 ~density:0.5
        in
        let budget =
          Tgd_engine.Budget.limits ~rounds:max_int ~facts:200_000
        in
        let r = Tgd_chase.Chase.restricted ~budget ~analyze:false sigma i in
        Tgd_chase.Chase.is_model r)

let suite =
  [ case "classify: one notion per level" test_classify_levels;
    case "profile: msa_wins verdicts" test_profile_msa_wins;
    case "profile: divergent set refuted" test_profile_divergent;
    case "covers: cumulative chain" test_covers_chain;
    case "stratified: beats flat under tight budget" test_stratified_beats_flat;
    case "stratified: certificate round-trips" test_stratified_cert_roundtrips;
    case "certcheck: wa/ja/msa round-trips" test_cert_roundtrips;
    case "certcheck: mfa round-trips" test_mfa_cert_roundtrips;
    case "certcheck: super-weak round-trips" test_superweak_cert_roundtrips;
    case "certcheck: rejects tampering" test_certcheck_rejects_tampering;
    case "certcheck: rejects cyclic weak claim"
      test_certcheck_rejects_cyclic_weak_claim;
    case "strategy: deep decision" test_strategy_deep;
    case "chase: lattice certificate promotes" test_lattice_promotes_round_truncation;
    case "analyze: consumes the lattice" test_analyze_consumes_lattice;
    QCheck_alcotest.to_alcotest qcheck_implication_chain;
    QCheck_alcotest.to_alcotest qcheck_lattice_certified_terminates
  ]
