(* The serve layer: the JSON codec round-trips, every op dispatches to a
   well-formed terminal response, malformed input is a [bad_request] (never
   an escaped exception), transient injected faults retry and then surface
   as the [fault] code, and the IO loop answers every accepted line exactly
   once — shedding with [overloaded] beyond the queue limit. *)

open Tgd_engine
open Helpers
module Json = Tgd_serve.Json
module Server = Tgd_serve.Server

let req src =
  match Json.of_string src with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad test request %s: %s" src m

let handle ?(config = Server.default_config) src =
  Server.handle config (req src)

let get_ok resp =
  match Json.member "ok" resp with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "response without ok: %s" (Json.to_string resp)

let error_code resp =
  match Option.bind (Json.member "error" resp) (Json.member "code") with
  | Some (Json.String c) -> c
  | _ -> Alcotest.failf "no error code in %s" (Json.to_string resp)

let result_field name resp =
  match Option.bind (Json.member "result" resp) (Json.member name) with
  | Some v -> v
  | None -> Alcotest.failf "no result.%s in %s" name (Json.to_string resp)

(* -- the JSON codec ------------------------------------------------------ *)

let test_json_parse_basics () =
  (match Json.of_string {| {"a": [1, -2.5, true, null], "b": "x\ny"} |} with
  | Ok
      (Json.Obj
        [ ( "a",
            Json.List
              [ Json.Int 1; Json.Float f; Json.Bool true; Json.Null ] );
          ("b", Json.String "x\ny")
        ])
    when f = -2.5 -> ()
  | Ok j -> Alcotest.failf "misparsed: %s" (Json.to_string j)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Json.of_string {| "snow\u2603man \ud83d\ude00" |} with
  | Ok (Json.String s) ->
    check_bool "unicode escapes incl. surrogate pair" true
      (s = "snow\xe2\x98\x83man \xf0\x9f\x98\x80")
  | _ -> Alcotest.fail "unicode escape parse failed");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{'a':1}" ]

let gen_json : Json.t QCheck.Gen.t =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [ return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) small_signed_int;
              map (fun f -> Json.Float (Float.of_int f /. 8.)) small_signed_int;
              map (fun s -> Json.String s) (small_string ~gen:printable)
            ]
        in
        if n <= 0 then scalar
        else
          oneof
            [ scalar;
              map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)));
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair (small_string ~gen:printable) (self (n / 2))))
            ]))

(* printing may render floats and duplicate-keyed objects non-uniquely, so
   the property is print-parse-print stability, not structural equality *)
let prop_json_roundtrip =
  QCheck.Test.make ~name:"to_string ∘ of_string stabilizes" ~count:200
    (QCheck.make ~print:Json.to_string gen_json)
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Error _ -> false
      | Ok j' -> Json.to_string j' = Json.to_string (Result.get_ok (Json.of_string (Json.to_string j'))))

(* -- dispatch: one well-formed terminal response per request ------------- *)

let test_classify_op () =
  let resp = handle {| {"id": 7, "op": "classify",
                        "tgds": "E(x,y) -> exists z. E(y,z)."} |} in
  check_bool "ok" true (get_ok resp);
  check_bool "id echoed" true (Json.member "id" resp = Some (Json.Int 7));
  check_bool "bounds" true
    (result_field "n" resp = Json.Int 2 && result_field "m" resp = Json.Int 1)

let test_chase_op () =
  let resp = handle {| {"id": 1, "op": "chase",
                        "tgds": "E(x,y) -> S(y).",
                        "facts": "E(a,b). E(b,c)."} |} in
  check_bool "ok" true (get_ok resp);
  check_bool "terminated" true
    (result_field "outcome" resp = Json.String "terminated");
  check_bool "fact count" true (result_field "fact_count" resp = Json.Int 4)

let test_chase_op_truncates () =
  (* fact caps are never promoted away by a termination certificate, so
     this truncation is deterministic *)
  let resp = handle {| {"id": 1, "op": "chase", "max_facts": 5,
                        "tgds": "E(x,y), E(y,z) -> E(x,z).",
                        "facts": "E(a,b). E(b,c). E(c,d). E(d,e)."} |} in
  check_bool "ok (truncation is a result, not an error)" true (get_ok resp);
  check_bool "truncated" true
    (result_field "outcome" resp = Json.String "truncated")

let test_entail_op () =
  let proved = handle {| {"id": 2, "op": "entail",
                          "tgds": "E(x,y) -> S(y).",
                          "goal": "E(x,y), E(y,z) -> S(z)."} |} in
  check_bool "proved" true (result_field "answer" proved = Json.String "proved");
  let disproved = handle {| {"id": 3, "op": "entail",
                             "tgds": "E(x,y) -> S(y).",
                             "goal": "S(x) -> E(x,x)."} |} in
  check_bool "disproved" true
    (result_field "answer" disproved = Json.String "disproved")

let test_rewrite_op () =
  let resp = handle {| {"id": 4, "op": "rewrite", "direction": "g2l",
                        "tgds": "E(x,y) -> exists z. E(y,z)."} |} in
  check_bool "ok" true (get_ok resp);
  check_bool "rewritable" true
    (result_field "outcome" resp = Json.String "rewritable");
  let bad = handle {| {"id": 5, "op": "rewrite", "direction": "sideways",
                       "tgds": "E(x,y) -> S(y)."} |} in
  check_bool "unknown direction is bad_request" true
    ((not (get_ok bad)) && error_code bad = "bad_request")

let test_analyze_op () =
  let resp = handle {| {"id": 6, "op": "analyze",
                        "tgds": "E(x,y) -> S(y)."} |} in
  check_bool "ok" true (get_ok resp);
  match result_field "certificate" resp with
  | Json.String _ -> ()
  | j -> Alcotest.failf "unexpected certificate %s" (Json.to_string j)

let test_analyze_cached () =
  let module Memo = Tgd_engine.Memo in
  Memo.clear Server.analyze_memo;
  let r1 = handle {| {"id": 1, "op": "analyze",
                      "tgds": "P(x) -> exists z. Q(x,z)."} |} in
  let misses = (Memo.counters Server.analyze_memo).Memo.misses in
  (* same ontology under different whitespace: the canonical key hits *)
  let r2 = handle {| {"id": 2, "op": "analyze",
                      "tgds": "P(x)  ->  exists z.  Q(x,z)."} |} in
  check_bool "first request missed" true (misses > 0);
  check_bool "second request hit" true
    ((Memo.counters Server.analyze_memo).Memo.hits > 0
    && (Memo.counters Server.analyze_memo).Memo.misses = misses);
  check_bool "identical reports" true
    (Json.to_string (Option.get (Json.member "result" r1))
    = Json.to_string (Option.get (Json.member "result" r2)))

let test_bad_requests () =
  List.iter
    (fun (label, src) ->
      let resp = handle src in
      check_bool (label ^ " not ok") false (get_ok resp);
      check_bool (label ^ " coded") true (error_code resp = "bad_request"))
    [ ("missing op", {| {"id": 1} |});
      ("non-string op", {| {"id": 1, "op": 3} |});
      ("unknown op", {| {"id": 1, "op": "fly"} |});
      ("missing tgds", {| {"id": 1, "op": "classify"} |});
      ("unparsable tgds", {| {"id": 1, "op": "classify", "tgds": "E(x"} |});
      ("non-string field", {| {"id": 1, "op": "classify", "tgds": 9} |});
      ("bad goal", {| {"id": 1, "op": "entail",
                       "tgds": "E(x,y) -> S(y).", "goal": "E(x"} |});
      ("bad facts", {| {"id": 1, "op": "chase",
                        "tgds": "E(x,y) -> S(y).", "facts": "E(a"} |})
    ]

(* -- fault handling: retries, then a typed fault response ---------------- *)

let test_fault_exhausts_retries () =
  let config = { Server.default_config with Server.retries = 2;
                 backoff_base_s = 1e-4 } in
  let resp =
    Chaos.with_config { Chaos.default_config with Chaos.raise_p = 1.0 }
      (fun () ->
        Server.handle config (req {| {"id": 9, "op": "classify",
                                      "tgds": "E(x,y) -> S(y)."} |}))
  in
  check_bool "not ok" false (get_ok resp);
  check_bool "fault code" true (error_code resp = "fault");
  check_bool "id still echoed" true (Json.member "id" resp = Some (Json.Int 9))

let test_fault_then_retry_succeeds () =
  (* raise_p = 1 but only the first attempts draw faults once the config
     is swapped for a quiet one mid-flight is hard to stage; instead run
     many requests at p = 0.5 and require every response to be terminal,
     with both outcomes observed *)
  let config = { Server.default_config with Server.retries = 6;
                 backoff_base_s = 1e-5 } in
  let oks = ref 0 and faults = ref 0 in
  Chaos.with_config { Chaos.default_config with Chaos.seed = 3; raise_p = 0.5 }
    (fun () ->
      for i = 1 to 30 do
        let resp =
          Server.handle config
            (req (Printf.sprintf
                    {| {"id": %d, "op": "classify", "tgds": "E(x,y) -> S(y)."} |}
                    i))
        in
        if get_ok resp then incr oks else incr faults
      done);
  check_int "every request answered" 30 (!oks + !faults);
  (* p = 0.5 over 7 attempts each: all-fault for any single request has
     probability 2^-7; some ok must appear over 30 requests *)
  check_bool "retries rescued some requests" true (!oks > 0)

(* -- the IO loop --------------------------------------------------------- *)

let with_serve ?config lines =
  let in_path = Filename.temp_file "serve_in" ".ndjson" in
  let out_path = Filename.temp_file "serve_out" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove in_path; Sys.remove out_path)
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
      close_out oc;
      let ic = open_in in_path in
      let out = open_out out_path in
      let code =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic; close_out_noerr out)
          (fun () -> Server.serve ?config ~signals:false ic out)
      in
      let ic = open_in out_path in
      let rec read acc =
        match input_line ic with
        | l -> read (req l :: acc)
        | exception End_of_file -> close_in ic; List.rev acc
      in
      (code, read []))

let test_serve_loop_answers_everything () =
  let code, resps =
    with_serve
      [ {| {"id": 1, "op": "classify", "tgds": "E(x,y) -> S(y)."} |};
        "this is not json";
        {| {"id": 2, "op": "entail", "tgds": "E(x,y) -> S(y).", "goal": "E(x,y) -> S(y)."} |};
        "";
        {| {"id": 3, "op": "nope"} |}
      ]
  in
  check_int "exit code" 0 code;
  (* blank lines are skipped; everything else gets a terminal response *)
  check_int "one response per non-blank line" 4 (List.length resps);
  check_bool "in order" true
    (List.map (fun r -> Json.member "id" r) resps
    = [ Some (Json.Int 1); Some Json.Null; Some (Json.Int 2);
        Some (Json.Int 3) ])

let test_serve_loop_sheds_overload () =
  (* a 50ms injected delay per request lets the reader outrun the handler:
     with queue depth 2 most of the 12 requests must shed — but all 12 get
     a terminal response *)
  let lines =
    List.init 12 (fun i ->
        Printf.sprintf
          {| {"id": %d, "op": "classify", "tgds": "E(x,y) -> S(y)."} |} i)
  in
  let config = { Server.default_config with Server.queue_limit = 2 } in
  let code, resps =
    Chaos.with_config
      { Chaos.default_config with Chaos.delay_p = 1.0; delay_s = 0.05 }
      (fun () -> with_serve ~config lines)
  in
  check_int "exit code" 0 code;
  check_int "all requests answered" 12 (List.length resps);
  let shed =
    List.length
      (List.filter
         (fun r -> (not (get_ok r)) && error_code r = "overloaded")
         resps)
  in
  check_bool "some requests were shed" true (shed > 0);
  check_bool "some requests were served" true (shed < 12)

(* -- bounded NDJSON line reader ------------------------------------------ *)

let read_all ?max_bytes content =
  let path = Filename.temp_file "serve_lines" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match Json.read_line_bounded ?max_bytes ic with
            | Json.Eof -> List.rev acc
            | frame -> go (frame :: acc)
          in
          go []))

let test_read_line_bounded () =
  (* CRLF endings are stripped; a trailing partial line still arrives *)
  (match read_all "a\r\nbb\nccc" with
  | [ Json.Line "a"; Json.Line "bb"; Json.Line "ccc" ] -> ()
  | frames -> Alcotest.failf "unexpected frames (%d)" (List.length frames));
  (* empty input is immediately Eof; lone newline is one empty line *)
  check_int "empty input" 0 (List.length (read_all ""));
  (match read_all "\n" with
  | [ Json.Line "" ] -> ()
  | _ -> Alcotest.fail "lone newline should be one empty line");
  (* an over-cap line is consumed (not buffered) and reported with its
     length; the following line is still readable *)
  (match read_all ~max_bytes:8 "0123456789abcdef\nshort\n" with
  | [ Json.Oversized 16; Json.Line "short" ] -> ()
  | [ Json.Oversized n; _ ] -> Alcotest.failf "oversized length %d" n
  | _ -> Alcotest.fail "oversized line not isolated");
  (* a line exactly at the cap passes *)
  match read_all ~max_bytes:5 "12345\n123456\n" with
  | [ Json.Line "12345"; Json.Oversized 6 ] -> ()
  | _ -> Alcotest.fail "cap boundary misjudged"

let test_serve_rejects_oversized_line () =
  let config = { Server.default_config with Server.max_line_bytes = 128 } in
  let big =
    Printf.sprintf {| {"id": 1, "op": "classify", "tgds": "%s"} |}
      (String.make 200 'x')
  in
  let code, resps =
    with_serve ~config
      [ big; {| {"id": 2, "op": "classify", "tgds": "E(x,y) -> S(y)."} |} ]
  in
  check_int "exit code" 0 code;
  check_int "both lines answered" 2 (List.length resps);
  match resps with
  | [ r1; r2 ] ->
    check_bool "oversized is typed" true
      ((not (get_ok r1)) && error_code r1 = "request_too_large");
    check_bool "loop survives to serve the next line" true (get_ok r2)
  | _ -> Alcotest.fail "expected two responses"

let suite =
  [ case "json parses and rejects" test_json_parse_basics;
    case "bounded line reader: crlf, partials, oversized"
      test_read_line_bounded;
    case "serve rejects oversized lines" test_serve_rejects_oversized_line;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    case "classify op" test_classify_op;
    case "chase op" test_chase_op;
    case "chase op truncates honestly" test_chase_op_truncates;
    case "entail op" test_entail_op;
    case "rewrite op" test_rewrite_op;
    case "analyze op" test_analyze_op;
    case "analyze reports cached by ontology digest" test_analyze_cached;
    case "malformed requests are bad_request" test_bad_requests;
    case "faults exhaust retries into a typed response"
      test_fault_exhausts_retries;
    case "retries rescue transient faults" test_fault_then_retry_succeeds;
    case "serve loop answers every line" test_serve_loop_answers_everything;
    slow_case "serve loop sheds overload" test_serve_loop_sheds_overload
  ]
