open Tgd_syntax
open Tgd_chase
open Helpers

let s = schema [ ("Emp", 2); ("Dept", 1); ("WorksIn", 2); ("HasMgr", 2) ]

(* a small OMQA setup: every employee works in some department; every
   department has a manager who is an employee of it *)
let sigma =
  tgds
    "Emp(x,d) -> WorksIn(x,d), Dept(d).\n\
     Dept(d) -> exists m. HasMgr(d,m), WorksIn(m,d)."

let db = inst ~schema:s "Emp(ann,cs). Emp(bob,math)."

let test_boolean_certain () =
  check_answer "∃ manager of cs" Entailment.Proved
    (Cq.certain_boolean sigma db
       [ Atom.make (Relation.make "HasMgr" 2)
           [ Term.const (c "cs"); Term.var (v "m") ] ]);
  check_answer "nobody manages ann's dept by name" Entailment.Disproved
    (Cq.certain_boolean sigma db
       [ Atom.make (Relation.make "HasMgr" 2)
           [ Term.const (c "cs"); Term.const (c "bob") ] ])

let test_certain_answers () =
  let q =
    Cq.make [ v "x"; v "d" ]
      [ Atom.of_vars (Relation.make "WorksIn" 2) [ v "x"; v "d" ] ]
  in
  let answers, precision = Cq.certain_answers sigma db q in
  check_bool "exact" true (precision = `Exact);
  (* only database constants: ann/cs, bob/math (managers are nulls) *)
  check_int "two answers" 2 (List.length answers);
  check_bool "ann works in cs" true
    (List.mem [ c "ann"; c "cs" ] answers)

let test_query_head_validation () =
  Alcotest.check_raises "head var must occur"
    (Invalid_argument "Cq.make: head variable not in query body") (fun () ->
      ignore (Cq.make [ v "q" ] [ Atom.of_vars (Relation.make "Dept" 1) [ v "d" ] ]))

let test_lower_bound_precision () =
  let looping = [ tgd "E(x,y) -> exists z. E(y,z)." ] in
  let se = schema [ ("E", 2) ] in
  let dbe = inst ~schema:se "E(a,b)." in
  let q = Cq.make [ v "x" ] [ Atom.of_vars (Relation.make "E" 2) [ v "x"; v "y" ] ] in
  let answers, precision =
    Cq.certain_answers ~budget:(Tgd_engine.Budget.limits ~rounds:4 ~facts:50) looping dbe q
  in
  check_bool "lower bound flagged" true (precision = `Lower_bound);
  check_bool "a is certain" true (List.mem [ c "a" ] answers)

let e2 = Relation.make "E" 2

let q head atoms = Cq.make head atoms

let test_containment () =
  (* path-2 ⊆ path-1 (projection): answers x with an outgoing 2-path are
     answers with an outgoing edge *)
  let p1 = q [ v "x" ] [ Atom.of_vars e2 [ v "x"; v "y" ] ] in
  let p2 =
    q [ v "x" ]
      [ Atom.of_vars e2 [ v "x"; v "y" ]; Atom.of_vars e2 [ v "y"; v "z" ] ]
  in
  check_bool "p2 ⊆ p1" true (Cq.contained p2 p1);
  check_bool "p1 ⊄ p2" false (Cq.contained p1 p2);
  check_bool "reflexive" true (Cq.contained p1 p1);
  (* loop query ⊆ edge query *)
  let loop = q [ v "x" ] [ Atom.of_vars e2 [ v "x"; v "x" ] ] in
  check_bool "loop ⊆ edge" true (Cq.contained loop p1);
  check_bool "edge ⊄ loop" false (Cq.contained p1 loop)

let test_equivalence_modulo_redundancy () =
  (* adding a redundant (foldable) atom keeps the query equivalent *)
  let q1 = q [ v "x" ] [ Atom.of_vars e2 [ v "x"; v "y" ] ] in
  let q2 =
    q [ v "x" ]
      [ Atom.of_vars e2 [ v "x"; v "y" ]; Atom.of_vars e2 [ v "x"; v "w" ] ]
  in
  check_bool "equivalent" true (Cq.equivalent_queries q1 q2)

let test_containment_head_arity () =
  let q1 = q [ v "x" ] [ Atom.of_vars e2 [ v "x"; v "y" ] ] in
  let q0 = Cq.boolean [ Atom.of_vars e2 [ v "x"; v "y" ] ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Cq.contained: head arities differ") (fun () ->
      ignore (Cq.contained q1 q0))

let test_repeated_head_vars () =
  (* the diagonal query is contained in the general one, but not vice
     versa: pinning the repeated head variable (x,x) onto the two distinct
     frozen images of (u,w) must fail *)
  let diag = q [ v "x"; v "x" ] [ Atom.of_vars e2 [ v "x"; v "x" ] ] in
  let general = q [ v "u"; v "w" ] [ Atom.of_vars e2 [ v "u"; v "w" ] ] in
  check_bool "diag ⊆ general" true (Cq.contained diag general);
  check_bool "general ⊄ diag" false (Cq.contained general diag)

let test_body_acyclic () =
  check_bool "path acyclic" true
    (Cq.body_acyclic
       (Cq.boolean
          [ Atom.of_vars e2 [ v "x"; v "y" ]; Atom.of_vars e2 [ v "y"; v "z" ] ]));
  check_bool "triangle cyclic" false
    (Cq.body_acyclic
       (Cq.boolean
          [ Atom.of_vars e2 [ v "x"; v "y" ]; Atom.of_vars e2 [ v "y"; v "z" ];
            Atom.of_vars e2 [ v "z"; v "x" ] ]))

let suite =
  [ case "boolean certain answers" test_boolean_certain;
    case "certain answers over db constants" test_certain_answers;
    case "query validation" test_query_head_validation;
    case "budget-limited precision" test_lower_bound_precision;
    case "containment (homomorphism theorem)" test_containment;
    case "equivalence modulo redundancy" test_equivalence_modulo_redundancy;
    case "containment arity check" test_containment_head_arity;
    case "repeated head variables" test_repeated_head_vars;
    case "body acyclicity" test_body_acyclic
  ]
