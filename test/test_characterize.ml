open Tgd_syntax
open Tgd_core
open Helpers

let s_e = schema [ ("E", 2) ]
let s_p = schema [ ("P", 1); ("Q", 1) ]

let caps =
  Characterize.
    { max_body_atoms = 1; max_conjunct_atoms = 1; max_disjuncts = 2; dom_bound = 2 }

let candidate_caps =
  Candidates.{ max_body_atoms = 2; max_head_atoms = 2; keep_tautologies = false }

let test_edd_enumeration () =
  let edds = List.of_seq (Characterize.edds_e_nm ~caps s_p ~n:1 ~m:0) in
  check_bool "non-empty" true (edds <> []);
  List.iter
    (fun d ->
      check_bool "within E_{1,0}" true (Edd.in_e_nm ~n:1 ~m:0 d))
    edds

let test_sigma_vee_soundness () =
  (* every edd in Σ^∨ holds in every bounded member, by construction; spot
     check against a fresh enumeration *)
  let o = Ontology.axiomatic s_p [ tgd "P(x) -> Q(x)." ] in
  let vee = Tgd_engine.Budget.value (Characterize.sigma_vee ~caps o ~n:1 ~m:0) in
  check_bool "contains the axiom as an edd" true
    (List.exists
       (fun d ->
         match Edd.as_tgd d with
         | Some t -> Canonical.equal_up_to_renaming t (tgd "P(x) -> Q(x).")
         | None -> false)
       vee);
  Ontology.models_up_to o 2
  |> Seq.iter (fun i ->
         List.iter
           (fun d -> check_bool "member satisfies Σ^∨" true (Tgd_instance.Satisfaction.edd i d))
           vee)

let test_steps_2_3 () =
  let o = Ontology.axiomatic s_p [ tgd "P(x) -> Q(x)." ] in
  let vee = Tgd_engine.Budget.value (Characterize.sigma_vee ~caps o ~n:1 ~m:0) in
  let deps = Characterize.sigma_exists_eq vee in
  let sigma = Characterize.sigma_exists deps in
  check_bool "Σ^∃ ⊆ Σ^{∃,=} as tgds" true
    (List.length sigma <= List.length deps);
  (* the synthesized tgds axiomatize O on the bounded universe *)
  check_bool "axiomatizes" true
    (Characterize.verify_axiomatization o sigma ~dom_size:2 = None)

let test_synthesize_recovers_axioms () =
  (* Theorem 4.1 in action: from the membership oracle of Mod(Σ) alone,
     synthesis recovers an equivalent axiomatization *)
  let cases =
    [ (s_p, [ tgd "P(x) -> Q(x)." ], 1, 0);
      (s_e, [ tgd "E(x,y) -> E(y,x)." ], 2, 0);
      (s_e, [ tgd "E(x,y) -> exists z. E(y,z)." ], 2, 1) ]
  in
  List.iter
    (fun (s, sigma, n, m) ->
      let o =
        Ontology.oracle ~name:"oracle-of-models" s (fun i ->
            Tgd_instance.Satisfaction.tgds i sigma)
      in
      let synth = Tgd_engine.Budget.value (Characterize.synthesize ~candidate_caps o ~n ~m) in
      check_bool "non-empty synthesis" true (synth <> []);
      match Characterize.verify_axiomatization o synth ~dom_size:2 with
      | None -> ()
      | Some cex ->
        Alcotest.failf "synthesis disagrees on %a" Tgd_instance.Instance.pp cex)
    cases

let test_synthesize_detects_non_tgd_ontology () =
  (* "E non-empty" is not closed under subinstance-like behaviour of tgds…
     concretely: no set of tgds over E can axiomatize it (the empty instance
     is a model of any tgd set satisfied by some instance with no
     E-implications).  Synthesis must fail verification. *)
  let o = Ontology.oracle ~name:"nonempty" s_e (fun i -> not (Tgd_instance.Instance.is_empty i)) in
  let synth = Tgd_engine.Budget.value (Characterize.synthesize ~candidate_caps o ~n:2 ~m:1) in
  check_bool "cannot axiomatize non-tgd ontology" true
    (Characterize.verify_axiomatization o synth ~dom_size:2 <> None)

let test_egds_in_sigma_vee () =
  (* an oracle ontology requiring E to be a partial function admits a key
     egd in Σ^∨ *)
  let functional i =
    Tgd_instance.Satisfaction.egd i
      (Egd.make
         ~body:
           [ Atom.of_vars (Relation.make "E" 2) [ v "x"; v "y" ];
             Atom.of_vars (Relation.make "E" 2) [ v "x"; v "z" ] ]
         (v "y") (v "z"))
  in
  let o = Ontology.oracle ~name:"functional" s_e functional in
  let caps2 = Characterize.{ caps with max_body_atoms = 2; dom_bound = 2 } in
  let vee = Tgd_engine.Budget.value (Characterize.sigma_vee ~caps:caps2 o ~n:3 ~m:0) in
  let deps = Characterize.sigma_exists_eq vee in
  check_bool "some egd found" true (Dependency.egds deps <> [])

let test_pipeline_agrees_with_synthesis () =
  (* Σ^∃ from the explicit edd pipeline axiomatizes the same bounded models
     as the direct candidate synthesis *)
  let o = Ontology.axiomatic s_p [ tgd "P(x) -> Q(x)." ] in
  let pipeline =
    Characterize.sigma_exists
      (Characterize.sigma_exists_eq (Tgd_engine.Budget.value (Characterize.sigma_vee ~caps o ~n:1 ~m:0)))
  in
  let direct = Tgd_engine.Budget.value (Characterize.synthesize ~candidate_caps o ~n:1 ~m:0) in
  check_bool "pipeline verified" true
    (Characterize.verify_axiomatization o pipeline ~dom_size:2 = None);
  check_bool "mutually equivalent" true
    (Tgd_core.Rewrite.verify_equivalence_bounded pipeline direct ~dom_size:2
    = None)

let test_ftgd_profile () =
  (* Theorem 5.6 profile holds for Example 5.2's full tgd... *)
  let sigma52, _ = Tgd_workload.Families.example_5_2 in
  let o52 = Ontology.axiomatic (Rewrite.schema_of sigma52) sigma52 in
  let p = Characterize.ftgd_profile ~dom_size:2 ~modularity_n:3 o52 in
  check_bool "FTGD profile holds" true (Characterize.ftgd_profile_holds p);
  (* ...and fails ∩-closure for a disjunctive oracle *)
  let disj =
    Ontology.oracle s_e (fun i ->
        Tgd_instance.Instance.mem i
          (Tgd_syntax.Fact.make (Relation.make "E" 2)
             [ Tgd_syntax.Constant.indexed 0; Tgd_syntax.Constant.indexed 0 ])
        || Tgd_instance.Instance.mem i
             (Tgd_syntax.Fact.make (Relation.make "E" 2)
                [ Tgd_syntax.Constant.indexed 1; Tgd_syntax.Constant.indexed 1 ]))
  in
  let p = Characterize.ftgd_profile ~dom_size:2 disj in
  check_bool "disjunctive not ∩-closed" false p.Characterize.intersection_closed

let test_theory_ontology_not_critical () =
  (* egd-constrained ontologies fail criticality: the critical instance
     violates every non-trivial egd — the reason Step 3 may discard egds *)
  let e = Relation.make "E" 2 in
  let key =
    Egd.make
      ~body:
        [ Atom.of_vars e [ v "x"; v "y" ]; Atom.of_vars e [ v "x"; v "z" ] ]
      (v "y") (v "z")
  in
  let th = Tgd_chase.Theory.{ tgds = []; egds = [ key ]; denials = [] } in
  let o = Ontology.of_theory s_e th in
  check_bool "1-critical still fine" true
    (Properties.verdict_holds (Properties.critical_up_to o 1));
  (match Properties.critical_up_to o 2 with
  | Properties.Fails 2 -> ()
  | _ -> Alcotest.fail "the 2-critical instance must violate the key egd");
  (* but it IS closed under products (egds are Horn) *)
  check_bool "⊗-closed" true
    (Properties.verdict_holds (Properties.closed_under_products o ~dom_size:2))

let test_classify_oracle () =
  (* black box in, precise class out: the symmetric-closure oracle is a
     full+guarded (indeed linear? no — E(x,y)→E(y,x) is linear!) ontology *)
  let oracle i =
    Tgd_instance.Satisfaction.tgds i (tgds "E(x,y) -> E(y,x).")
  in
  let o = Ontology.oracle ~name:"sym" s_e oracle in
  let caps2 = Characterize.{ caps with dom_bound = 2 } in
  let config =
    Rewrite.
      { default_config with
        caps =
          Candidates.
            { max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
      }
  in
  let result = Characterize.classify_oracle ~caps:caps2 ~config o ~n:2 ~m:0 in
  (match result.Characterize.axioms with
  | Some sigma -> check_bool "axioms found" true (sigma <> [])
  | None -> Alcotest.fail "symmetric oracle must be axiomatizable");
  (match result.Characterize.diagnosis with
  | Some report ->
    let full_status =
      List.find
        (fun cs -> cs.Expressibility.cls = Tgd_class.Full)
        report.Expressibility.classes
    in
    check_bool "recovered axioms are full" true full_status.Expressibility.syntactic
  | None -> Alcotest.fail "diagnosis expected");
  (* a non-tgd oracle classifies to None *)
  let bad = Ontology.oracle ~name:"≤2 facts" s_e (fun i -> Tgd_instance.Instance.fact_count i <= 2) in
  let result = Characterize.classify_oracle ~caps:caps2 ~config bad ~n:2 ~m:1 in
  check_bool "non-tgd oracle rejected" true (result.Characterize.axioms = None)

let suite =
  [ case "E_{n,m} enumeration" test_edd_enumeration;
    case "Σ^∨ soundness (Step 1)" test_sigma_vee_soundness;
    case "Steps 2–3" test_steps_2_3;
    slow_case "synthesis recovers axioms (Theorem 4.1)" test_synthesize_recovers_axioms;
    case "synthesis fails on non-tgd ontology" test_synthesize_detects_non_tgd_ontology;
    slow_case "egds appear in Σ^∨" test_egds_in_sigma_vee;
    case "pipeline ≡ direct synthesis" test_pipeline_agrees_with_synthesis;
    slow_case "classify black-box oracle" test_classify_oracle;
    case "Theorem 5.6 profile" test_ftgd_profile;
    case "theory ontologies fail criticality" test_theory_ontology_not_critical
  ]
