open Tgd_syntax
open Tgd_instance
open Tgd_workload
open Helpers

let test_rng_reproducible () =
  let mk seed =
    Gen.random_instance (Gen.rng seed)
      (schema [ ("E", 2) ])
      ~dom_size:4 ~density:0.5
  in
  check_bool "same seed same instance" true (Instance.equal (mk 42) (mk 42))

let test_random_schema () =
  let s = Gen.random_schema (Gen.rng 1) ~relations:4 ~max_arity:3 in
  check_int "relations" 4 (Schema.size s);
  check_bool "arity range" true (Schema.max_arity s >= 1 && Schema.max_arity s <= 3)

let test_random_instance_density () =
  let s = schema [ ("E", 2) ] in
  let empty = Gen.random_instance (Gen.rng 1) s ~dom_size:4 ~density:0.0 in
  check_int "density 0" 0 (Instance.fact_count empty);
  let full = Gen.random_instance (Gen.rng 1) s ~dom_size:4 ~density:1.0 in
  check_int "density 1" 16 (Instance.fact_count full)

let test_random_tgd_classes () =
  let st = Gen.rng 5 in
  let s = Gen.random_schema st ~relations:3 ~max_arity:2 in
  for _ = 1 to 25 do
    check_bool "full" true (Tgd_class.is_full (Gen.random_full_tgd st s ~n:3 ~body_atoms:2 ~head_atoms:2));
    check_bool "linear" true (Tgd_class.is_linear (Gen.random_linear_tgd st s ~n:2 ~m:1));
    check_bool "guarded" true (Tgd_class.is_guarded (Gen.random_guarded_tgd st s ~n:2 ~m:1 ~body_atoms:2))
  done

let test_random_sigma () =
  let st = Gen.rng 9 in
  let s = Gen.random_schema st ~relations:3 ~max_arity:2 in
  let sigma = Gen.random_sigma st s Tgd_class.Linear ~size:5 in
  check_int "size" 5 (List.length sigma);
  check_bool "all linear" true (Tgd_class.all_in_class Tgd_class.Linear sigma)

let test_families_classes () =
  check_bool "linear chain is linear" true
    (Tgd_class.all_in_class Tgd_class.Linear (Families.linear_chain 3));
  check_bool "existential chain is linear" true
    (Tgd_class.all_in_class Tgd_class.Linear (Families.existential_chain 3));
  check_bool "tc not frontier-guarded" false
    (Tgd_class.all_in_class Tgd_class.Frontier_guarded Families.transitive_closure);
  check_bool "guarded_rewritable guarded" true
    (Tgd_class.all_in_class Tgd_class.Guarded (Families.guarded_rewritable 2));
  check_bool "guarded_unrewritable guarded" true
    (Tgd_class.all_in_class Tgd_class.Guarded (Families.guarded_unrewritable 2));
  check_bool "fg_rewritable fg" true
    (Tgd_class.all_in_class Tgd_class.Frontier_guarded (Families.fg_rewritable 2));
  check_bool "fg_rewritable not all guarded" false
    (Tgd_class.all_in_class Tgd_class.Guarded (Families.fg_rewritable 2));
  check_bool "fg_unrewritable fg" true
    (Tgd_class.all_in_class Tgd_class.Frontier_guarded (Families.fg_unrewritable 2));
  check_bool "dl-lite linear" true
    (Tgd_class.all_in_class Tgd_class.Linear (Families.dl_lite_roles 2))

let test_families_sizes () =
  check_int "chain" 4 (List.length (Families.linear_chain 4));
  check_int "guarded_rewritable" 6 (List.length (Families.guarded_rewritable 3));
  check_int "dl-lite" 6 (List.length (Families.dl_lite_roles 3))

let test_structured_instances () =
  check_bool "clique is critical" true (Tgd_instance.Critical.is_critical (Families.clique 3));
  check_int "cycle facts" 5 (Instance.fact_count (Families.cycle 5));
  (* grid w×h: (w-1)h + w(h-1) edges *)
  check_int "grid 3x3 edges" 12 (Instance.fact_count (Families.grid 3 3));
  check_int "grid 1x4 edges" 3 (Instance.fact_count (Families.grid 1 4));
  check_int "grid adom" 9
    (Tgd_syntax.Constant.Set.cardinal (Instance.adom (Families.grid 3 3)));
  (* cycles model the successor tgd *)
  check_bool "cycle models succ" true
    (Satisfaction.tgds (Families.cycle 4)
       (Tgd_parse.Parse.tgds_exn "E(x,y) -> exists z. E(y,z)."))

let test_wide_family () =
  let sigma = Families.guarded_rewritable_wide 1 in
  check_bool "guarded" true (Tgd_class.all_in_class Tgd_class.Guarded sigma);
  check_int "arity 3" 3
    (Tgd_syntax.Schema.max_arity (Tgd_core.Rewrite.schema_of sigma));
  (* still linear-rewritable *)
  match
    (Tgd_engine.Budget.value
       (Tgd_core.Rewrite.g_to_l
          ~config:
            Tgd_core.Rewrite.
              { default_config with
                caps =
                  Tgd_core.Candidates.
                    { max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
              }
          sigma))
      .Tgd_core.Rewrite.outcome
  with
  | Tgd_core.Rewrite.Rewritable _ -> ()
  | _ -> Alcotest.fail "wide family must be rewritable"

let test_layered_family () =
  let copies = 3 and depth = 2 in
  let sigma = Families.layered ~copies ~depth in
  check_int "3·copies·depth rules" (3 * copies * depth) (List.length sigma);
  check_bool "layered is guarded full Datalog" true
    (Tgd_class.all_in_class Tgd_class.Guarded sigma
    && List.for_all Tgd_class.is_full sigma);
  let exist = Families.layered_existential ~copies ~depth in
  check_int "one existential sink per copy"
    ((3 * copies * depth) + copies)
    (List.length exist);
  check_bool "existential variant is not full" false
    (List.for_all Tgd_class.is_full exist);
  (* copies are independent: the schema grows linearly, never shares
     relations across copies *)
  let rels sg =
    Tgd_syntax.Schema.size (Tgd_core.Rewrite.schema_of sg)
  in
  check_int "relations scale linearly" (2 * rels sigma)
    (rels (Families.layered ~copies:(2 * copies) ~depth))

let test_layered_instance_saturates () =
  let copies = 2 and depth = 2 and chain = 4 in
  let inst = Families.layered_instance ~copies ~depth ~chain in
  check_int "one seed chain edge per copy" (copies * chain)
    (Instance.fact_count inst);
  let r =
    Tgd_chase.Chase.restricted
      (Families.layered_existential ~copies ~depth)
      inst
  in
  check_bool "layered chase terminates" true
    (r.Tgd_chase.Chase.outcome = Tgd_chase.Chase.Terminated);
  (* every seed propagates through all layers: each copy's top-layer R
     relation carries the full chain *)
  check_bool "saturation reaches the top layer" true
    (Instance.fact_count r.Tgd_chase.Chase.instance
    > copies * chain * depth)

let test_family_equivalences () =
  (* the documented ground truth of the rewritable family *)
  check_answer "guarded_rewritable ≡ expected" Tgd_chase.Entailment.Proved
    (Tgd_chase.Entailment.equivalent
       (Families.guarded_rewritable 2)
       (Families.guarded_rewritable_expected 2))

let test_separations_are_as_documented () =
  let sigma_g, i_g = Families.separation_linear_vs_guarded in
  check_bool "I_G violates" false (Satisfaction.tgds i_g sigma_g);
  let sigma_f, i_f = Families.separation_guarded_vs_fg in
  check_bool "I_F violates" false (Satisfaction.tgds i_f sigma_f);
  let sigma52, i52 = Families.example_5_2 in
  check_bool "Example 5.2 I models σ" true (Satisfaction.tgds i52 sigma52)

let suite =
  [ case "rng reproducible" test_rng_reproducible;
    case "random schema" test_random_schema;
    case "density extremes" test_random_instance_density;
    case "random tgd classes" test_random_tgd_classes;
    case "random sigma" test_random_sigma;
    case "family classes" test_families_classes;
    case "family sizes" test_families_sizes;
    case "structured instances" test_structured_instances;
    case "wide family" test_wide_family;
    case "layered family shape" test_layered_family;
    case "layered instance saturates" test_layered_instance_saturates;
    case "family equivalences" test_family_equivalences;
    case "separations as documented" test_separations_are_as_documented
  ]
