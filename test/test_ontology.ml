open Tgd_syntax
open Tgd_instance
open Tgd_core
open Helpers

let s = schema [ ("E", 2) ]
let sym = [ tgd "E(x,y) -> E(y,x)." ]
let o = Ontology.axiomatic ~name:"symmetric" s sym

let test_axiomatic_mem () =
  check_bool "symmetric in" true (Ontology.mem o (inst ~schema:s "E(a,b). E(b,a)."));
  check_bool "asymmetric out" false (Ontology.mem o (inst ~schema:s "E(a,b)."));
  check_bool "empty in" true (Ontology.mem o (Instance.empty s));
  Alcotest.check Alcotest.(option (list (Alcotest.testable Tgd.pp Tgd.equal)))
    "axioms" (Some sym) (Ontology.axioms o)

let test_axiomatic_validation () =
  Alcotest.check_raises "foreign relation"
    (Invalid_argument "Ontology.axiomatic: tgd uses a relation outside the schema")
    (fun () -> ignore (Ontology.axiomatic s [ tgd "F(x) -> E(x,x)." ]))

let test_extensional_mem () =
  let witness = inst ~schema:s "E(a,b). E(b,a)." in
  let oe = Ontology.extensional s [ witness ] in
  check_bool "isomorphic copy in" true
    (Ontology.mem oe (inst ~schema:s "E(u,w). E(w,u)."));
  check_bool "other shape out" false (Ontology.mem oe (inst ~schema:s "E(a,a)."))

let test_oracle_mem () =
  let oo = Ontology.oracle s (fun i -> Instance.fact_count i mod 2 = 0) in
  check_bool "even" true (Ontology.mem oo (inst ~schema:s "E(a,b). E(b,a)."));
  check_bool "odd" false (Ontology.mem oo (inst ~schema:s "E(a,b)."))

let test_models_up_to () =
  check_int "symmetric models ≤ 2" (1 + 2 + 8)
    (Combinat.seq_length (Ontology.models_up_to o 2));
  check_int "non-members ≤ 2" (19 - 11)
    (Combinat.seq_length (Ontology.non_members_up_to o 2))

let test_chase_witness () =
  let k = inst ~schema:s "E(a,b)." in
  (match Ontology.chase_witness o k with
  | Some j ->
    check_bool "member" true (Ontology.mem o j);
    check_bool "contains K" true (Instance.subset k j)
  | None -> Alcotest.fail "chase should terminate on full tgds");
  (* non-terminating axioms within a tiny budget *)
  let o_inf =
    Ontology.axiomatic s [ tgd "E(x,y) -> exists z. E(y,z)." ]
  in
  check_bool "budget-limited witness" true
    (Ontology.chase_witness
       ~budget:(Tgd_engine.Budget.limits ~rounds:3 ~facts:10)
       o_inf k
    = None)

let test_member_extending () =
  let k = inst ~schema:s "E(a,b)." in
  let members = List.of_seq (Ontology.member_extending ~max_extra:0 o k) in
  check_bool "some member extends K" true (members <> []);
  List.iter
    (fun j ->
      check_bool "contains K" true (Instance.subset k j);
      check_bool "is member" true (Ontology.mem o j))
    members

let test_restrict_mem () =
  let o' = Ontology.restrict_mem o (fun i -> Instance.fact_count i <= 2) in
  check_bool "still symmetric" true (Ontology.mem o' (inst ~schema:s "E(a,b). E(b,a)."));
  check_bool "too big" false
    (Ontology.mem o' (inst ~schema:s "E(a,b). E(b,a). E(c,c)."))

let suite =
  [ case "axiomatic membership" test_axiomatic_mem;
    case "axiomatic validation" test_axiomatic_validation;
    case "extensional membership" test_extensional_mem;
    case "oracle membership" test_oracle_mem;
    case "models_up_to" test_models_up_to;
    case "chase witness" test_chase_witness;
    case "member_extending" test_member_extending;
    case "restrict_mem" test_restrict_mem
  ]
