(* The domain pool (Tgd_engine.Pool): order preservation, first-hit
   semantics, deterministic stats merging, and independence of the
   Section 9 rewriting algorithms from the [jobs] setting. *)

open Tgd_syntax
open Tgd_instance
open Tgd_engine
open Tgd_core
open Helpers

(* -- pool primitives ---------------------------------------------------- *)

let test_map_order () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let input = List.init 257 Fun.id in
      let f x = (x * x) + 1 in
      check_bool "parallel_map = List.map" true
        (Pool.parallel_map pool f (List.to_seq input) = List.map f input);
      (* chunk size 1 maximizes interleaving across workers *)
      check_bool "chunk:1" true
        (Pool.parallel_map pool ~chunk:1 f (List.to_seq input)
        = List.map f input);
      check_bool "empty input" true
        (Pool.parallel_map pool f Seq.empty = []))

let test_filter_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = List.init 100 Fun.id in
      let f x = if x mod 3 = 0 then Some (x, 2 * x) else None in
      check_bool "parallel_filter_map = Seq.filter_map" true
        (Pool.parallel_filter_map pool ~chunk:7 f (List.to_seq input)
        = (List.to_seq input |> Seq.filter_map f |> List.of_seq)))

let test_find_map_first_hit () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = Seq.init 100 Fun.id in
      (* many hits; the first in input order must win no matter which
         worker reaches its chunk first *)
      let f x = if x mod 7 = 3 then Some x else None in
      (match Pool.parallel_find_map pool ~chunk:1 f input with
      | Some 3 -> ()
      | Some x -> Alcotest.failf "expected first hit 3, got %d" x
      | None -> Alcotest.fail "expected a hit");
      check_bool "no hit" true
        (Pool.parallel_find_map pool (fun _ -> None) input = None);
      check_bool "empty input" true
        (Pool.parallel_find_map pool f Seq.empty = None))

let test_exception_propagation () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.parallel_map pool
          (fun x -> if x = 13 then failwith "boom" else x)
          (Seq.init 40 Fun.id)
      with
      | _ -> Alcotest.fail "worker exception must re-raise in the submitter"
      | exception Failure msg -> check_bool "message" true (msg = "boom"))

(* -- stats merging ------------------------------------------------------ *)

let chain_schema = schema [ ("E", 2); ("P", 1) ]

let chain_inst =
  inst ~schema:chain_schema
    "E(a1,a2). E(a2,a3). E(a3,a4). E(a4,a5). E(a5,a6). P(a1)."

let chain_sigma =
  tgds "E(x,y), E(y,z) -> E(x,z).\nP(x), E(x,y) -> P(y)."

(* The parallel match phase hands each task a private Stats.t and merges
   them in task order, so a chase's own counters — not just its facts —
   must be independent of [jobs]. *)
let test_chase_stats_jobs_independent () =
  let run jobs = Tgd_chase.Chase.restricted ~jobs chain_sigma chain_inst in
  let s = run 1 and p = run 2 in
  check_bool "same saturation" true
    (Instance.equal s.Tgd_chase.Chase.instance p.Tgd_chase.Chase.instance);
  let ss = s.Tgd_chase.Chase.stats and ps = p.Tgd_chase.Chase.stats in
  check_int "fired" ss.Stats.fired ps.Stats.fired;
  check_int "delta_facts" ss.Stats.delta_facts ps.Stats.delta_facts;
  check_int "scans" ss.Stats.scans ps.Stats.scans;
  check_int "probes" ss.Stats.probes ps.Stats.probes;
  check_int "rounds" ss.Stats.rounds ps.Stats.rounds

(* Work done on worker domains lands back in the submitting domain's
   global accumulator: diffing Stats.global around a parallel chase gives
   the same totals as around the sequential one. *)
let test_global_stats_merge () =
  let harvest jobs =
    let before = Stats.copy (Stats.global ()) in
    ignore (Tgd_chase.Chase.restricted ~jobs chain_sigma chain_inst);
    Stats.diff (Stats.global ()) before
  in
  let s = harvest 1 and p = harvest 2 in
  check_int "fired" s.Stats.fired p.Stats.fired;
  check_int "delta_facts" s.Stats.delta_facts p.Stats.delta_facts;
  check_int "scans" s.Stats.scans p.Stats.scans

(* -- jobs-independence of the Section 9 algorithms (qcheck) ------------- *)

let screening_config =
  Rewrite.
    { default_config with
      minimize = false;
      caps =
        Candidates.
          { max_body_atoms = 1; max_head_atoms = 1; keep_tautologies = false }
    }

let outcome_sig = function
  | Rewrite.Rewritable sigma' ->
    "R:" ^ String.concat ";" (List.map Tgd.to_string sigma')
  | Rewrite.Not_rewritable { complete; unknown_candidates } ->
    Printf.sprintf "N:%b:%d" complete unknown_candidates
  | Rewrite.Unknown msg -> "U:" ^ msg

let arb_sigma cls =
  QCheck.make
    ~print:(fun sigma -> String.concat " ; " (List.map Tgd.to_string sigma))
    (fun st ->
      Tgd_workload.Gen.random_sigma st chain_schema cls
        ~size:(1 + Random.State.int st 2))

(* Screening preserves candidate order and the backward check stays
   sequential, so the whole report — outcome, enumeration and entailment
   counts — must not depend on [jobs].  Memos are cleared between runs so
   each one recomputes from scratch. *)
let prop_jobs_independent name rewrite cls =
  QCheck.Test.make ~name ~count:12 (arb_sigma cls) (fun sigma ->
      let run jobs =
        Tgd_chase.Entailment.clear_memos ();
        Tgd_chase.Chase.clear_memo ();
        let r = rewrite ?config:(Some Rewrite.{ screening_config with jobs }) sigma in
        ( outcome_sig r.Rewrite.outcome,
          r.Rewrite.candidates_enumerated,
          r.Rewrite.candidates_entailed )
      in
      let base = run 1 in
      List.for_all (fun jobs -> run jobs = base) [ 2; 4 ])

let prop_g_to_l =
  prop_jobs_independent "G-to-L independent of jobs ∈ {1,2,4}"
    (fun ?config sigma -> Budget.value (Rewrite.g_to_l ?config sigma))
    Tgd_class.Guarded

let prop_fg_to_g =
  prop_jobs_independent "FG-to-G independent of jobs ∈ {1,2,4}"
    (fun ?config sigma -> Budget.value (Rewrite.fg_to_g ?config sigma))
    Tgd_class.Frontier_guarded

(* -- chunk-size independence (qcheck) ----------------------------------- *)

(* Cost-sized chunking is a dispatch detail: forcing any explicit chunk
   must leave the whole report — outcome, enumeration and entailment
   counts — byte-identical to the strategy-sized sequential run, at every
   jobs setting. *)
let prop_chunk_independent name rewrite cls =
  QCheck.Test.make ~name ~count:6 (arb_sigma cls) (fun sigma ->
      let run ~jobs ~chunk =
        Tgd_chase.Entailment.clear_memos ();
        Tgd_chase.Chase.clear_memo ();
        let r =
          rewrite
            ?config:(Some Rewrite.{ screening_config with jobs; chunk })
            sigma
        in
        ( outcome_sig r.Rewrite.outcome,
          r.Rewrite.candidates_enumerated,
          r.Rewrite.candidates_entailed )
      in
      let base = run ~jobs:1 ~chunk:None in
      List.for_all
        (fun jobs ->
          List.for_all
            (fun chunk -> run ~jobs ~chunk:(Some chunk) = base)
            [ 1; 4; 64 ])
        [ 1; 2; 4 ])

let prop_g_to_l_chunk =
  prop_chunk_independent "G-to-L independent of chunk ∈ {1,4,64} × jobs"
    (fun ?config sigma -> Budget.value (Rewrite.g_to_l ?config sigma))
    Tgd_class.Guarded

(* The chase's match phase goes through the same chunked dispatch; the
   saturation and its counters must not move either. *)
let prop_chase_chunk_independent =
  let arb_full =
    QCheck.make
      ~print:(fun sigma -> String.concat " ; " (List.map Tgd.to_string sigma))
      (fun st ->
        Tgd_workload.Gen.random_sigma st chain_schema Tgd_class.Full
          ~size:(1 + Random.State.int st 2))
  in
  QCheck.Test.make ~name:"chase independent of chunk ∈ {1,4,64} × jobs"
    ~count:6 arb_full (fun sigma ->
      let run ~jobs ~chunk =
        Tgd_chase.Chase.restricted ~jobs ?chunk sigma chain_inst
      in
      let base = run ~jobs:1 ~chunk:None in
      List.for_all
        (fun jobs ->
          List.for_all
            (fun chunk ->
              let r = run ~jobs ~chunk:(Some chunk) in
              Instance.equal base.Tgd_chase.Chase.instance
                r.Tgd_chase.Chase.instance
              && base.Tgd_chase.Chase.stats.Stats.fired
                 = r.Tgd_chase.Chase.stats.Stats.fired
              && base.Tgd_chase.Chase.stats.Stats.delta_facts
                 = r.Tgd_chase.Chase.stats.Stats.delta_facts
              && base.Tgd_chase.Chase.stats.Stats.rounds
                 = r.Tgd_chase.Chase.stats.Stats.rounds)
            [ 1; 4; 64 ])
        [ 1; 2; 4 ])

(* -- warm pool registry ------------------------------------------------- *)

let test_warm_pool_reuse () =
  let first =
    Pool.with_warm ~jobs:2 (function
      | None -> Alcotest.fail "with_warm ~jobs:2 must hand out a pool"
      | Some p -> p)
  in
  Pool.with_warm ~jobs:2 (function
    | None -> Alcotest.fail "expected a warm pool"
    | Some p2 -> check_bool "same warm pool on reuse" true (first == p2));
  Pool.with_warm ~jobs:1 (fun p ->
      check_bool "jobs=1 stays sequential" true (p = None))

let test_warm_pool_runs_work () =
  Pool.with_warm ~jobs:2 (function
    | None -> Alcotest.fail "expected a warm pool"
    | Some pool ->
      let input = List.init 100 Fun.id in
      check_bool "warm pool computes" true
        (Pool.parallel_map pool ~chunk:8 (fun x -> x + 1) (List.to_seq input)
        = List.map (fun x -> x + 1) input);
      let c = Pool.counters pool in
      check_bool "chunk counters accumulate" true
        (c.Pool.batches >= 1 && c.Pool.chunks >= 1 && c.Pool.chunk_items >= 100))

let suite =
  [ case "parallel_map preserves order" test_map_order;
    case "parallel_filter_map preserves order" test_filter_map_order;
    case "parallel_find_map first hit" test_find_map_first_hit;
    case "exception propagation" test_exception_propagation;
    case "chase stats independent of jobs" test_chase_stats_jobs_independent;
    case "global stats merged across domains" test_global_stats_merge;
    case "warm pool reused across borrows" test_warm_pool_reuse;
    case "warm pool runs chunked work" test_warm_pool_runs_work ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_g_to_l; prop_fg_to_g; prop_g_to_l_chunk;
        prop_chase_chunk_independent ]
