open Tgd_chase
open Helpers
module Termination = Tgd_analysis.Termination

let test_weakly_acyclic_positive () =
  check_bool "full tgds" true
    (Termination.is_weakly_acyclic [ tgd "E(x,y), E(y,z) -> E(x,z)." ]);
  check_bool "acyclic existential" true
    (Termination.is_weakly_acyclic [ tgd "P(x) -> exists z. E(x,z)." ]);
  check_bool "chain family" true
    (Termination.is_weakly_acyclic (Tgd_workload.Families.existential_chain 4));
  check_bool "empty set" true (Termination.is_weakly_acyclic [])

let test_weakly_acyclic_negative () =
  check_bool "self-feeding existential" false
    (Termination.is_weakly_acyclic [ tgd "E(x,y) -> exists z. E(y,z)." ]);
  check_bool "two-rule cycle" false
    (Termination.is_weakly_acyclic
       [ tgd "E(x,y) -> exists z. F(y,z)."; tgd "F(x,y) -> exists z. E(y,z)." ])

let test_full_always_weakly_acyclic () =
  (* no existentials → no special edges → weakly acyclic *)
  let st = Tgd_workload.Gen.rng 7 in
  let schema = Tgd_workload.Gen.random_schema st ~relations:3 ~max_arity:2 in
  for _ = 1 to 20 do
    let s =
      Tgd_workload.Gen.random_full_tgd st schema ~n:3 ~body_atoms:2 ~head_atoms:2
    in
    check_bool "full is wa" true (Termination.is_weakly_acyclic [ s ])
  done

let test_graph_edges () =
  let edges = Termination.dependency_graph [ tgd "P(x) -> exists z. E(x,z)." ] in
  let special = List.filter (fun e -> e.Termination.special) edges in
  let regular = List.filter (fun e -> not e.Termination.special) edges in
  check_int "one special edge (P[0] → E[1])" 1 (List.length special);
  check_int "one regular edge (P[0] → E[0])" 1 (List.length regular)

let test_wa_chase_terminates () =
  (* weak acyclicity really does guarantee termination on our chase *)
  let sigma = Tgd_workload.Families.existential_chain 5 in
  check_bool "wa" true (Termination.is_weakly_acyclic sigma);
  let schema = Tgd_core.Rewrite.schema_of sigma in
  let i =
    Tgd_workload.Gen.random_instance (Tgd_workload.Gen.rng 3) schema ~dom_size:3
      ~density:0.4
  in
  let r = Chase.restricted sigma i in
  check_bool "terminates" true (Chase.is_model r)

let suite =
  [ case "positive" test_weakly_acyclic_positive;
    case "negative" test_weakly_acyclic_negative;
    case "full tgds always wa" test_full_always_weakly_acyclic;
    case "dependency graph edges" test_graph_edges;
    case "wa chase terminates" test_wa_chase_terminates
  ]
