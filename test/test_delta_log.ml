(* Incremental delta checkpoints (Tgd_engine.Delta_log + the chase/rewrite
   codecs over it): base ∘ appends ∘ compact ∘ load is the identity; a torn
   final record is dropped silently (clean resume — the kill -9 signature)
   while mid-chain corruption degrades to the last verifiable prefix
   (Resumed_partial, never a crash); compaction retires generations beyond
   [keep]; and a resumed chase replays to exactly the state the truncated
   run returned, at every (chunk, jobs) and through compactions. *)

open Tgd_instance
open Tgd_engine
open Helpers
module Chase = Tgd_chase.Chase
module Rewrite = Tgd_core.Rewrite
module Families = Tgd_workload.Families

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tgd_delta_test_%d_%d" (Unix.getpid ()) !dir_counter)

let with_log ?keep ?(kind = "test-payload") f =
  let cfg = Delta_log.config ?keep ~dir:(fresh_dir ()) ~name:"t" ~kind () in
  Fun.protect ~finally:(fun () -> Delta_log.remove cfg) (fun () -> f cfg)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let flip_byte path off =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xff));
  write_file path (Bytes.to_string s)

(* -- wire primitives ---------------------------------------------------- *)

let test_varint_roundtrip () =
  let buf = Buffer.create 64 in
  let values = [ 0; 1; 127; 128; 300; 16_383; 16_384; max_int ] in
  List.iter (Wire.write_varint buf) values;
  let r = Wire.reader (Buffer.contents buf) in
  List.iter
    (fun v -> check_int (Printf.sprintf "varint %d" v) v (Wire.read_varint r))
    values;
  check_bool "consumed all" true (Wire.at_end r)

let test_varint_corrupt () =
  (* ten continuation bytes overflow the 63-bit payload *)
  let r = Wire.reader (String.make 10 '\xff') in
  (match Wire.read_varint r with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "varint overflow must raise Corrupt");
  let r = Wire.reader "\x80" in
  match Wire.read_varint r with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated varint must raise Corrupt"

let test_crc32_vector () =
  (* the standard IEEE 802.3 check value *)
  let s = "123456789" in
  Alcotest.(check int32)
    "crc32 of 123456789" 0xCBF43926l
    (Int32.of_int (Wire.crc32 s ~pos:0 ~len:(String.length s)))

(* -- the basic chain contract ------------------------------------------- *)

let test_fresh_then_chain_roundtrip () =
  with_log (fun cfg ->
      (match Delta_log.load cfg with
      | Delta_log.Fresh -> ()
      | _ -> Alcotest.fail "no files yet: expected Fresh");
      let t = Delta_log.start cfg ~base:"BASE" in
      Delta_log.append t "d1";
      Delta_log.append t "d2";
      Delta_log.append t "d3";
      Delta_log.close t;
      (match Delta_log.load cfg with
      | Delta_log.Resumed c ->
        Alcotest.(check string) "base" "BASE" c.Delta_log.base;
        Alcotest.(check (list string))
          "deltas" [ "d1"; "d2"; "d3" ] c.Delta_log.deltas;
        check_int "torn" 0 c.Delta_log.torn_bytes;
        check_bool "clean" true (c.Delta_log.warnings = [])
      | _ -> Alcotest.fail "expected clean Resumed");
      Delta_log.remove cfg;
      match Delta_log.load cfg with
      | Delta_log.Fresh -> ()
      | _ -> Alcotest.fail "after remove: expected Fresh")

let test_append_after_resume () =
  with_log (fun cfg ->
      let t = Delta_log.start cfg ~base:"B" in
      Delta_log.append t "one";
      Delta_log.close t;
      (match Delta_log.load cfg with
      | Delta_log.Resumed c ->
        let t = Delta_log.resume cfg c in
        Delta_log.append t "two";
        Delta_log.close t
      | _ -> Alcotest.fail "expected Resumed");
      match Delta_log.load cfg with
      | Delta_log.Resumed c ->
        Alcotest.(check (list string))
          "extended chain" [ "one"; "two" ] c.Delta_log.deltas
      | _ -> Alcotest.fail "expected Resumed after re-append")

let test_compaction_prunes_generations () =
  with_log ~keep:2 (fun cfg ->
      let t = Delta_log.start cfg ~base:"g1" in
      Delta_log.append t "a";
      Delta_log.compact t ~base:"g2";
      Delta_log.append t "b";
      Delta_log.compact t ~base:"g3";
      Delta_log.compact t ~base:"g4";
      let gen = Delta_log.generation t in
      Delta_log.close t;
      check_int "four generations opened" 4 gen;
      (* keep = 2: generations ≤ gen - 2 are gone, gen and gen-1 remain *)
      check_bool "g1 base pruned" false
        (Sys.file_exists (Delta_log.base_path cfg ~generation:1));
      check_bool "g2 base pruned" false
        (Sys.file_exists (Delta_log.base_path cfg ~generation:2));
      check_bool "g3 base kept" true
        (Sys.file_exists (Delta_log.base_path cfg ~generation:3));
      check_bool "g4 base kept" true
        (Sys.file_exists (Delta_log.base_path cfg ~generation:4));
      match Delta_log.load cfg with
      | Delta_log.Resumed c ->
        Alcotest.(check string) "latest base" "g4" c.Delta_log.base;
        Alcotest.(check (list string)) "chain empty" [] c.Delta_log.deltas
      | _ -> Alcotest.fail "expected Resumed from the compacted generation")

let test_kind_mismatch_rejected () =
  with_log (fun cfg ->
      let t = Delta_log.start cfg ~base:"B" in
      Delta_log.close t;
      let other = { cfg with Delta_log.kind = "other-kind" } in
      match Delta_log.load other with
      | Delta_log.Rejected _ -> ()
      | _ -> Alcotest.fail "kind mismatch must be Rejected")

(* -- the two corruption modes, distinctly ------------------------------- *)

(* Frames of a 4-byte payload cost 1 (varint) + 4 (crc) + 4 = 9 bytes;
   the log header is its first line. *)
let header_end cfg =
  let s = read_file (Delta_log.log_path cfg ~generation:1) in
  String.index s '\n' + 1

let chain_of_three cfg =
  let t = Delta_log.start cfg ~base:"BASE" in
  Delta_log.append t "aaaa";
  Delta_log.append t "bbbb";
  Delta_log.append t "cccc";
  Delta_log.close t

let test_torn_tail_is_clean () =
  with_log (fun cfg ->
      chain_of_three cfg;
      let path = Delta_log.log_path cfg ~generation:1 in
      let s = read_file path in
      (* cut into the last frame: the kill -9 mid-append signature *)
      write_file path (String.sub s 0 (String.length s - 2));
      match Delta_log.load cfg with
      | Delta_log.Resumed c ->
        Alcotest.(check (list string))
          "prefix kept" [ "aaaa"; "bbbb" ] c.Delta_log.deltas;
        check_bool "torn bytes counted" true (c.Delta_log.torn_bytes > 0);
        check_bool "no warnings: torn is expected" true
          (c.Delta_log.warnings = []);
        (* resuming truncates the torn suffix, then extends cleanly *)
        let t = Delta_log.resume cfg c in
        Delta_log.append t "dddd";
        Delta_log.close t;
        (match Delta_log.load cfg with
        | Delta_log.Resumed c ->
          Alcotest.(check (list string))
            "torn suffix replaced" [ "aaaa"; "bbbb"; "dddd" ]
            c.Delta_log.deltas
        | _ -> Alcotest.fail "expected clean Resumed after repair")
      | _ -> Alcotest.fail "a torn tail must still be a clean Resumed")

let test_midchain_corruption_is_partial () =
  with_log (fun cfg ->
      chain_of_three cfg;
      let path = Delta_log.log_path cfg ~generation:1 in
      (* flip a payload byte of the second record — bytes follow it, so
         this is real corruption, not a torn tail *)
      flip_byte path (header_end cfg + 9 + 5);
      match Delta_log.load cfg with
      | Delta_log.Resumed_partial c ->
        Alcotest.(check (list string))
          "verified prefix" [ "aaaa" ] c.Delta_log.deltas;
        check_bool "records dropped" true (c.Delta_log.dropped_records >= 1);
        check_bool "warnings say what was lost" true
          (c.Delta_log.warnings <> [])
      | Delta_log.Resumed _ ->
        Alcotest.fail "mid-chain corruption must not look clean"
      | _ -> Alcotest.fail "expected Resumed_partial")

let test_corrupt_base_falls_back_or_rejects () =
  with_log (fun cfg ->
      (* two generations via compaction, then damage the newest base:
         the load must fall back to the older retained generation *)
      let t = Delta_log.start cfg ~base:"old" in
      Delta_log.append t "a";
      Delta_log.compact t ~base:"new";
      Delta_log.close t;
      let s = read_file (Delta_log.base_path cfg ~generation:2) in
      write_file
        (Delta_log.base_path cfg ~generation:2)
        (String.sub s 0 (String.length s - 1));
      (match Delta_log.load cfg with
      | Delta_log.Resumed_partial c ->
        Alcotest.(check string) "older base" "old" c.Delta_log.base;
        check_bool "fallback warned" true (c.Delta_log.warnings <> [])
      | _ -> Alcotest.fail "expected fallback to generation 1");
      (* and with the old generation gone too, the chain is Rejected *)
      Sys.remove (Delta_log.base_path cfg ~generation:1);
      match Delta_log.load cfg with
      | Delta_log.Rejected errors -> check_bool "diagnosed" true (errors <> [])
      | _ -> Alcotest.fail "no verifiable base must be Rejected")

(* -- inspection --------------------------------------------------------- *)

let test_inspect_reports_status () =
  with_log (fun cfg ->
      chain_of_three cfg;
      flip_byte
        (Delta_log.log_path cfg ~generation:1)
        (header_end cfg + 9 + 5);
      let pointer, gens = Delta_log.inspect ~dir:cfg.Delta_log.dir ~name:"t" in
      (match pointer with
      | Some (kind, _, g) ->
        Alcotest.(check string) "pointer kind" "test-payload" kind;
        check_int "pointer generation" 1 g
      | None -> Alcotest.fail "pointer must be readable");
      (match gens with
      | [ g ] ->
        check_bool "current" true g.Delta_log.g_current;
        check_bool "base ok" true (g.Delta_log.g_base_status = `Ok);
        let statuses =
          List.map (fun r -> r.Delta_log.r_status) g.Delta_log.g_records
        in
        check_bool "first record ok" true (List.nth statuses 0 = `Ok);
        check_bool "second record corrupt" true
          (match List.nth statuses 1 with `Corrupt _ -> true | _ -> false)
      | _ -> Alcotest.fail "expected exactly one generation");
      Alcotest.(check (list string))
        "scan finds the chain" [ "t" ]
        (Delta_log.scan ~dir:cfg.Delta_log.dir))

(* -- qcheck: chain round-trip and loader fuzz --------------------------- *)

let gen_payload = QCheck.Gen.(string_size ~gen:char (int_range 0 64))

let prop_chain_roundtrip =
  QCheck.Test.make ~name:"base ∘ appends ∘ compact ∘ load = id" ~count:40
    QCheck.(
      make
        Gen.(
          triple gen_payload
            (list_size (int_range 0 12) gen_payload)
            (list_size (int_range 0 6) gen_payload)))
    (fun (base, before, after) ->
      let cfg =
        Delta_log.config ~dir:(fresh_dir ()) ~name:"t" ~kind:"qc" ()
      in
      Fun.protect
        ~finally:(fun () -> Delta_log.remove cfg)
        (fun () ->
          let t = Delta_log.start cfg ~base in
          List.iter (Delta_log.append t) before;
          let compacted = base ^ String.concat "" before in
          Delta_log.compact t ~base:compacted;
          List.iter (Delta_log.append t) after;
          Delta_log.close t;
          match Delta_log.load cfg with
          | Delta_log.Resumed c ->
            c.Delta_log.base = compacted && c.Delta_log.deltas = after
          | _ -> false))

let prop_fuzz_never_crashes =
  QCheck.Test.make ~name:"random byte flips never crash the loader" ~count:80
    QCheck.(make Gen.(pair (int_range 0 1_000_000) (int_range 1 4)))
    (fun (seed, flips) ->
      let cfg =
        Delta_log.config ~dir:(fresh_dir ()) ~name:"t" ~kind:"fuzz" ()
      in
      Fun.protect
        ~finally:(fun () -> Delta_log.remove cfg)
        (fun () ->
          let t = Delta_log.start cfg ~base:"BASEPAYLOAD" in
          List.iter (Delta_log.append t)
            [ "alpha"; "beta"; "gamma"; "delta" ];
          Delta_log.close t;
          let rng = Random.State.make [| seed |] in
          let targets =
            [ Delta_log.base_path cfg ~generation:1;
              Delta_log.log_path cfg ~generation:1;
              Delta_log.current_path cfg
            ]
          in
          for _ = 1 to flips do
            let path = List.nth targets (Random.State.int rng 3) in
            let len = String.length (read_file path) in
            if len > 0 then flip_byte path (Random.State.int rng len)
          done;
          (* any constructor is acceptable; raising is the only failure *)
          match Delta_log.load cfg with
          | Delta_log.Fresh | Delta_log.Resumed _
          | Delta_log.Resumed_partial _ | Delta_log.Rejected _ ->
            true))

(* -- chase over the chain ----------------------------------------------- *)

let chase_fixture () =
  let sigma = Families.layered ~copies:2 ~depth:3 in
  let db = Families.layered_instance ~copies:2 ~depth:3 ~chain:6 in
  (sigma, db)

let test_chase_truncate_resume_equals_cold () =
  let sigma, db = chase_fixture () in
  let cold = Chase.restricted ~analyze:false sigma db in
  List.iter
    (fun (jobs, chunk) ->
      let log = Chase.log_config ~dir:(fresh_dir ()) ~name:"chase" () in
      Fun.protect
        ~finally:(fun () -> Delta_log.remove log)
        (fun () ->
          let r1 =
            Chase.restricted_resumable
              ~budget:(Budget.make ~rounds:2 ())
              ~jobs ~chunk ~every:1 ~compact_every:3 ~log sigma db
          in
          check_bool "first run truncated" true
            (match r1.Chase.outcome with
            | Chase.Truncated _ -> true
            | Chase.Terminated -> false);
          (* the chain replays to exactly the state the run returned *)
          let resumed =
            match Chase.load_log log with
            | Ok (Some r) -> r
            | Ok None -> Alcotest.fail "truncated run must leave a chain"
            | Error m -> Alcotest.fail (String.concat "; " m)
          in
          check_bool "replay = returned instance" true
            (Instance.equal
               resumed.Chase.rz_checkpoint.Chase.chk_instance
               r1.Chase.instance);
          check_int "replay rounds" r1.Chase.rounds
            resumed.Chase.rz_checkpoint.Chase.chk_rounds;
          check_int "replay fired" r1.Chase.fired
            resumed.Chase.rz_checkpoint.Chase.chk_fired;
          check_bool "clean chain" true (resumed.Chase.rz_warnings = []);
          let r2 =
            Chase.restricted_resumable ~jobs ~chunk ~every:1 ~compact_every:3
              ~log ~resume:resumed sigma db
          in
          check_bool
            (Printf.sprintf "resumed = cold at jobs %d chunk %d" jobs chunk)
            true
            (r2.Chase.outcome = Chase.Terminated
            && Instance.equal r2.Chase.instance cold.Chase.instance
            && r2.Chase.fired = cold.Chase.fired);
          (* a terminated resumable run removes its chain *)
          check_bool "chain removed on termination" true
            (Chase.load_log log = Ok None)))
    [ (1, 1); (1, 4); (1, 64); (2, 1); (2, 4); (2, 64) ]

let test_chase_fuel_truncation_syncs_chain () =
  (* fuel trips mid-round (a non-barrier accident): the chain must still
     replay to exactly the returned instance, via the final diff record *)
  let sigma, db = chase_fixture () in
  let log = Chase.log_config ~dir:(fresh_dir ()) ~name:"chase" () in
  Fun.protect
    ~finally:(fun () -> Delta_log.remove log)
    (fun () ->
      let r =
        Chase.restricted_resumable
          ~budget:(Budget.make ~fuel:7 ())
          ~every:2 ~log sigma db
      in
      match r.Chase.outcome with
      | Chase.Terminated -> Alcotest.fail "fuel 7 must truncate this fixture"
      | Chase.Truncated _ -> (
        match Chase.load_log log with
        | Ok (Some resumed) ->
          check_bool "chain replays the mid-round prefix" true
            (Instance.equal
               resumed.Chase.rz_checkpoint.Chase.chk_instance
               r.Chase.instance)
        | _ -> Alcotest.fail "expected a loadable chain"))

let prop_chase_chain_matrix =
  QCheck.Test.make
    ~name:"chain replay = truncated state (random fixture × jobs × chunk)"
    ~count:6
    QCheck.(
      make
        Gen.(
          quad (int_range 1 2) (int_range 2 3) (int_range 3 6) (int_range 1 3)))
    (fun (copies, depth, chain, rounds) ->
      let sigma = Families.layered ~copies ~depth in
      let db = Families.layered_instance ~copies ~depth ~chain in
      List.for_all
        (fun (jobs, chunk) ->
          let log = Chase.log_config ~dir:(fresh_dir ()) ~name:"c" () in
          Fun.protect
            ~finally:(fun () -> Delta_log.remove log)
            (fun () ->
              let r =
                Chase.restricted_resumable
                  ~budget:(Budget.make ~rounds ())
                  ~jobs ~chunk ~every:1 ~compact_every:2 ~log sigma db
              in
              match r.Chase.outcome with
              | Chase.Terminated -> Chase.load_log log = Ok None
              | Chase.Truncated _ -> (
                match Chase.load_log log with
                | Ok (Some resumed) ->
                  Instance.equal
                    resumed.Chase.rz_checkpoint.Chase.chk_instance
                    r.Chase.instance
                  && resumed.Chase.rz_checkpoint.Chase.chk_rounds
                     = r.Chase.rounds
                | _ -> false)))
        [ (1, 1); (1, 4); (1, 64); (2, 1); (2, 4); (2, 64) ])

(* -- rewrite sweep over the chain --------------------------------------- *)

let test_rewrite_incremental_resume_equals_cold () =
  let sigma =
    tgds "G(x,y), P(y) -> H(x). H(x) -> P(x). G(x,y) -> G(y,x)."
  in
  let config =
    { Rewrite.default_config with
      Rewrite.memo = false;
      minimize = false;
      chunk = Some 1 (* batches of 4 candidates: fine-grained commits *)
    }
  in
  let cold = Budget.value (Rewrite.fg_to_g ~config sigma) in
  let cfg = Rewrite.log_config ~dir:(fresh_dir ()) ~name:"sweep" () in
  Fun.protect
    ~finally:(fun () -> Delta_log.remove cfg)
    (fun () ->
      (* find a fuel that trips after at least one committed batch, so the
         resume is a genuine mid-sweep continuation *)
      let truncated_midsweep fuel =
        Delta_log.remove cfg;
        match
          Rewrite.fg_to_g
            ~config:
              { config with
                Rewrite.budget = Budget.make ~fuel ();
                checkpoint =
                  Some (Rewrite.Incremental (Rewrite.start_log cfg));
                checkpoint_every = 1
              }
            sigma
        with
        | Budget.Complete _ -> None
        | Budget.Truncated { partial; _ } -> (
          match partial.Rewrite.checkpoint with
          | Some cp when cp.Rewrite.cursor > 0 -> Some ()
          | _ -> None)
      in
      (match
         List.find_opt
           (fun fuel -> truncated_midsweep fuel <> None)
           [ 60; 120; 240; 480; 960; 1_920 ]
       with
      | Some _ -> ()
      | None -> Alcotest.fail "no fuel truncates this sweep mid-batch");
      let resumed =
        match Rewrite.load_log cfg with
        | Ok (Some r) -> r
        | _ -> Alcotest.fail "truncated sweep must leave a loadable chain"
      in
      check_bool "clean chain" true (resumed.Rewrite.rz_warnings = []);
      check_bool "cursor at a batch boundary" true
        (resumed.Rewrite.rz_checkpoint.Rewrite.cursor > 0);
      let r2 =
        Budget.value
          (Rewrite.fg_to_g ~config
             ~resume:resumed.Rewrite.rz_checkpoint sigma)
      in
      check_bool "resumed outcome = cold outcome" true
        (r2.Rewrite.outcome = cold.Rewrite.outcome))

let suite =
  [ case "wire: varint round-trip" test_varint_roundtrip;
    case "wire: corrupt varints raise Corrupt" test_varint_corrupt;
    case "wire: crc32 IEEE check value" test_crc32_vector;
    case "fresh, then chain round-trip" test_fresh_then_chain_roundtrip;
    case "appends extend a resumed chain" test_append_after_resume;
    case "compaction prunes beyond keep" test_compaction_prunes_generations;
    case "kind mismatch is Rejected" test_kind_mismatch_rejected;
    case "torn tail: silent drop, clean resume" test_torn_tail_is_clean;
    case "mid-chain corruption: partial resume"
      test_midchain_corruption_is_partial;
    case "corrupt base: fallback, then Rejected"
      test_corrupt_base_falls_back_or_rejects;
    case "inspect reports per-record status" test_inspect_reports_status;
    QCheck_alcotest.to_alcotest prop_chain_roundtrip;
    QCheck_alcotest.to_alcotest prop_fuzz_never_crashes;
    slow_case "chase: truncate, replay, resume = cold (jobs × chunk)"
      test_chase_truncate_resume_equals_cold;
    case "chase: fuel trip syncs the chain mid-round"
      test_chase_fuel_truncation_syncs_chain;
    QCheck_alcotest.to_alcotest prop_chase_chain_matrix;
    case "rewrite: incremental sink resumes to the cold outcome"
      test_rewrite_incremental_resume_equals_cold
  ]
