open Tgd_syntax
open Tgd_instance
open Tgd_core
open Helpers

let s_rpt = schema [ ("R", 1); ("P", 1); ("T", 1) ]
let s_e = schema [ ("E", 2) ]

let embeddable = function
  | Locality.Embeddable -> true
  | Locality.No_witness _ -> false

(* ---- Section 9.1, first separation: Σ_G is not linear (1,0)-local ---- *)

let sigma_g, i_sep = Tgd_workload.Families.separation_linear_vs_guarded
let o_g = Ontology.axiomatic s_rpt sigma_g

let test_separation_linear_embeddable () =
  (* Σ_G is linearly (1,0)-locally embeddable in I = {R(c), P(c)} *)
  check_bool "linearly embeddable" true
    (embeddable (Locality.locally_embeddable Locality.Linear ~n:1 ~m:0 o_g i_sep));
  (* but I ⊭ Σ_G *)
  check_bool "I not member" false (Ontology.mem o_g i_sep)

let test_separation_not_plain_embeddable () =
  (* with the full (plain) notion the configuration K = {R(c),P(c)} itself
     is tested, and no member contains it while folding back: the plain
     embeddability fails — this is why Σ_G IS (2,0)-local as a TGD_{2,0}
     ontology *)
  check_bool "not plainly embeddable" false
    (embeddable (Locality.locally_embeddable Locality.Plain ~n:2 ~m:0 o_g i_sep))

let test_separation_verdict () =
  match Tgd_engine.Budget.value (Locality.check_local_on Locality.Linear ~n:1 ~m:0 o_g [ i_sep ]) with
  | Locality.Not_local witness ->
    check_bool "witness is I" true (Instance.equal_facts witness i_sep)
  | Locality.Local_on_tests -> Alcotest.fail "Σ_G must not be linear (1,0)-local"

(* ---- Section 9.1, second separation: Σ_F is not guarded (2,0)-local ---- *)

let sigma_f, i_sep_f = Tgd_workload.Families.separation_guarded_vs_fg
let o_f = Ontology.axiomatic s_rpt sigma_f

let test_separation_guarded () =
  check_bool "guardedly embeddable" true
    (embeddable (Locality.locally_embeddable Locality.Guarded ~n:2 ~m:0 o_f i_sep_f));
  check_bool "I not member" false (Ontology.mem o_f i_sep_f);
  match Tgd_engine.Budget.value (Locality.check_local_on Locality.Guarded ~n:2 ~m:0 o_f [ i_sep_f ]) with
  | Locality.Not_local _ -> ()
  | Locality.Local_on_tests -> Alcotest.fail "Σ_F must not be guarded (2,0)-local"

let test_fg_embeddability_of_sigma_f () =
  (* Σ_F is frontier-guarded, hence frontier-guarded (2,0)-local
     (Lemma 8.3): no counterexample among small instances *)
  check_bool "fr-guardedly NOT embeddable in the separating I" false
    (embeddable
       (Locality.locally_embeddable Locality.Frontier_guarded ~n:2 ~m:0 o_f i_sep_f))

(* ---- Lemma 3.6 as a bounded test: TGD_{n,m}-ontologies are (n,m)-local ---- *)

let test_lemma_3_6_bounded () =
  let cases =
    [ (Ontology.axiomatic s_e [ tgd "E(x,y) -> E(y,x)." ], 2, 0);
      (Ontology.axiomatic s_e [ tgd "E(x,y) -> exists z. E(y,z)." ], 2, 1);
      (o_g, 2, 0) ]
  in
  List.iter
    (fun (o, n, m) ->
      match Tgd_engine.Budget.value (Locality.check_local_up_to Locality.Plain ~n ~m o 2) with
      | Locality.Local_on_tests -> ()
      | Locality.Not_local i ->
        Alcotest.failf "Lemma 3.6 violated on %a" Instance.pp i)
    cases

(* ---- Lemmas 6.2/7.2: refined embeddability implies plain (same I) ---- *)

let test_embeddability_monotonicity () =
  (* plain embeddable ⇒ linearly/guardedly embeddable (the configurations
     of the refined notions are a subset) *)
  let o = Ontology.axiomatic s_e [ tgd "E(x,y) -> E(y,x)." ] in
  Enumerate.instances_up_to s_e 2
  |> Seq.iter (fun i ->
         if embeddable (Locality.locally_embeddable Locality.Plain ~n:2 ~m:0 o i)
         then begin
           check_bool "⇒ linear emb" true
             (embeddable (Locality.locally_embeddable Locality.Linear ~n:2 ~m:0 o i));
           check_bool "⇒ guarded emb" true
             (embeddable (Locality.locally_embeddable Locality.Guarded ~n:2 ~m:0 o i))
         end)

(* ---- Lemma 8.3 (bounded): FG-ontologies are fr-guarded (n,m)-local ---- *)

let test_lemma_8_3_bounded () =
  (* Σ_F is frontier-guarded, so no instance may be fr-guardedly embeddable
     without being a member (checked exhaustively on dom ≤ 2) *)
  match
    Tgd_engine.Budget.value
      (Locality.check_local_up_to Locality.Frontier_guarded ~n:2 ~m:0 o_f 2)
  with
  | Locality.Local_on_tests -> ()
  | Locality.Not_local i ->
    Alcotest.failf "Lemma 8.3 violated on %a" Instance.pp i

let test_fg_configurations () =
  let i = inst ~schema:s_e "E(a,b). E(b,c)." in
  let configs =
    List.of_seq (Locality.configurations Locality.Frontier_guarded ~n:2 i)
  in
  (* every configuration is F-guarded: empty, or some fact covers F *)
  List.iter
    (fun conf ->
      check_bool "F-guarded" true
        (Instance.is_empty conf.Locality.sub
        || Fact.Set.exists
             (fun f ->
               Constant.Set.subset conf.Locality.fixed (Fact.constants f))
             (Instance.facts conf.Locality.sub)))
    configs;
  (* F = ∅ is always present with the empty K *)
  check_bool "empty configuration present" true
    (List.exists
       (fun conf ->
         Constant.Set.is_empty conf.Locality.fixed
         && Instance.is_empty conf.Locality.sub)
       configs)

(* ---- configurations ---- *)

let test_configurations () =
  let i = inst ~schema:s_e "E(a,b). E(b,c)." in
  let plain =
    List.of_seq (Locality.configurations Locality.Plain ~n:2 i)
  in
  (* subsets of {a,b,c} of size ≤ 2 *)
  check_int "plain configs" 7 (List.length plain);
  let linear = List.of_seq (Locality.configurations Locality.Linear ~n:2 i) in
  (* empty + one per fact *)
  check_int "linear configs" 3 (List.length linear);
  let guarded = List.of_seq (Locality.configurations Locality.Guarded ~n:2 i) in
  check_int "guarded configs" 3 (List.length guarded);
  List.iter
    (fun conf ->
      check_bool "fixed = adom" true
        (Constant.Set.equal conf.Locality.fixed (Instance.adom conf.Locality.sub)))
    (plain @ linear)

let test_guarded_configs_are_induced () =
  (* guarded configurations carry all facts over the guard's constants *)
  let i = inst ~schema:s_e "E(a,b). E(b,a). E(b,c)." in
  Locality.configurations Locality.Guarded ~n:2 i
  |> Seq.iter (fun conf ->
         check_bool "induced" true
           (Instance.is_induced_subinstance conf.Locality.sub i))

let test_witness_ok () =
  let o = Ontology.axiomatic s_e [ tgd "E(x,y) -> E(y,x)." ] in
  let k = inst ~schema:s_e "E(a,b)." in
  let witness = Option.get (Ontology.chase_witness o k) in
  (* witness = {E(a,b), E(b,a)}; target with both edges accepts it *)
  check_bool "fold into symmetric target" true
    (Locality.witness_ok ~m:0 ~fixed:(Instance.adom k) ~witness
       ~target:(inst ~schema:s_e "E(a,b). E(b,a)."));
  check_bool "fold into bare edge fails" false
    (Locality.witness_ok ~m:0 ~fixed:(Instance.adom k) ~witness
       ~target:(inst ~schema:s_e "E(a,b)."))

let suite =
  [ case "§9.1: Σ_G linearly embeddable in I" test_separation_linear_embeddable;
    case "§9.1: Σ_G plainly not embeddable" test_separation_not_plain_embeddable;
    case "§9.1: Σ_G not linear (1,0)-local" test_separation_verdict;
    case "§9.1: Σ_F not guarded (2,0)-local" test_separation_guarded;
    case "Σ_F fr-guarded embeddability" test_fg_embeddability_of_sigma_f;
    case "Lemma 3.6 (bounded)" test_lemma_3_6_bounded;
    case "Lemma 8.3 (bounded)" test_lemma_8_3_bounded;
    case "fr-guarded configurations" test_fg_configurations;
    case "refinement monotonicity" test_embeddability_monotonicity;
    case "configurations" test_configurations;
    case "guarded configs induced" test_guarded_configs_are_induced;
    case "witness_ok" test_witness_ok
  ]
