open Tgd_syntax
open Tgd_instance
open Tgd_chase
open Helpers
module Budget = Tgd_engine.Budget

let s = schema [ ("E", 2); ("P", 1); ("T", 1) ]

let truncated r =
  match r.Chase.outcome with Chase.Truncated _ -> true | Chase.Terminated -> false

let test_full_tgd_chase () =
  let sigma = [ tgd "E(x,y), E(y,z) -> E(x,z)." ] in
  let i = inst ~schema:s "E(a,b). E(b,c). E(c,d)." in
  let r = Chase.restricted sigma i in
  check_bool "terminated" true (Chase.is_model r);
  (* transitive closure of a 4-chain: 3+2+1 = 6 edges *)
  check_int "closure size" 6 (Instance.fact_count r.Chase.instance);
  check_bool "result models Σ" true (Satisfaction.tgds r.Chase.instance sigma);
  check_bool "contains input" true (Instance.subset i r.Chase.instance)

let test_existential_chase_terminates () =
  let sigma = [ tgd "P(x) -> exists z. E(x,z)." ] in
  let i = inst ~schema:s "P(a). P(b)." in
  let r = Chase.restricted sigma i in
  check_bool "terminated" true (Chase.is_model r);
  check_int "two new edges" 4 (Instance.fact_count r.Chase.instance);
  (* new values are labelled nulls *)
  let nulls =
    Constant.Set.filter Constant.is_null (Instance.adom r.Chase.instance)
  in
  check_int "two nulls" 2 (Constant.Set.cardinal nulls)

let test_restricted_reuses_witnesses () =
  (* E(a,b) already provides the witness: no firing needed *)
  let sigma = [ tgd "P(x) -> exists z. E(x,z)." ] in
  let i = inst ~schema:s "P(a). E(a,b)." in
  let r = Chase.restricted sigma i in
  check_int "no new facts" 2 (Instance.fact_count r.Chase.instance);
  check_int "nothing fired" 0 r.Chase.fired

let test_oblivious_fires_anyway () =
  let sigma = [ tgd "P(x) -> exists z. E(x,z)." ] in
  let i = inst ~schema:s "P(a). E(a,b)." in
  let r = Chase.oblivious sigma i in
  check_int "fires despite witness" 1 r.Chase.fired;
  check_int "adds a fact" 3 (Instance.fact_count r.Chase.instance)

let test_nonterminating_hits_budget () =
  let sigma = [ tgd "E(x,y) -> exists z. E(y,z)." ] in
  let i = inst ~schema:s "E(a,b)." in
  let budget = Budget.limits ~rounds:10 ~facts:1000 in
  let r = Chase.restricted ~budget sigma i in
  check_bool "not terminated" false (Chase.is_model r);
  check_bool "grew" true (Instance.fact_count r.Chase.instance > 5)

let test_budget_max_facts () =
  let sigma = [ tgd "P(x) -> exists z,w. E(x,z), E(x,w)." ] in
  let i = inst ~schema:s "P(a). P(b). P(c)." in
  let budget = Budget.limits ~rounds:100 ~facts:4 in
  let r = Chase.restricted ~budget sigma i in
  check_bool "budget exhausted" true
    (r.Chase.outcome = Chase.Truncated Budget.Facts)

let test_sound_prefix () =
  (* every chase prefix maps into every model extending the input *)
  let sigma = [ tgd "E(x,y) -> exists z. E(y,z)." ] in
  let i = inst ~schema:s "E(a,b)." in
  let budget = Budget.limits ~rounds:5 ~facts:1000 in
  let r = Chase.restricted ~budget sigma i in
  let model = inst ~schema:s "E(a,b). E(b,b)." in
  check_bool "model sanity" true (Satisfaction.tgds model sigma);
  check_bool "prefix folds into model fixing input" true
    (Hom.embeds_fixing (Instance.adom i) r.Chase.instance model)

let test_empty_sigma () =
  let i = inst ~schema:s "E(a,b)." in
  let r = Chase.restricted [] i in
  check_bool "identity" true (Instance.equal r.Chase.instance i);
  check_int "zero rounds fire" 0 r.Chase.fired

let test_bodiless_tgd_chase () =
  let sigma = [ tgd "-> exists z. P(z)." ] in
  let r = Chase.restricted sigma (Instance.empty s) in
  check_bool "terminated" true (Chase.is_model r);
  check_int "one fact" 1 (Instance.fact_count r.Chase.instance)

let test_multiple_tgds_interaction () =
  let sigma = [ tgd "P(x) -> exists z. E(x,z)."; tgd "E(x,y) -> T(y)." ] in
  let i = inst ~schema:s "P(a)." in
  let r = Chase.restricted sigma i in
  check_bool "terminated" true (Chase.is_model r);
  check_int "three facts" 3 (Instance.fact_count r.Chase.instance);
  check_bool "models all" true (Satisfaction.tgds r.Chase.instance sigma)

let test_recursive_existential_diverges () =
  (* adding T(x) → P(x) closes a loop through the existential: the chase
     cannot terminate (the set is not weakly acyclic) *)
  let sigma =
    [ tgd "P(x) -> exists z. E(x,z)."; tgd "E(x,y) -> T(y).";
      tgd "T(x) -> P(x)." ]
  in
  check_bool "not weakly acyclic" false (Tgd_analysis.Termination.is_weakly_acyclic sigma);
  let i = inst ~schema:s "P(a)." in
  let r = Chase.restricted ~budget:(Budget.limits ~rounds:6 ~facts:500) sigma i in
  check_bool "budget exhausted" true (truncated r)

let test_dl_lite_family_chase () =
  let sigma = Tgd_workload.Families.dl_lite_roles 3 in
  let schema_dl = Tgd_core.Rewrite.schema_of sigma in
  let a0 = Schema.find schema_dl "A0" |> Option.get in
  let i = Instance.of_facts schema_dl [ Fact.make a0 [ c "u" ] ] in
  let r = Chase.restricted sigma i in
  check_bool "terminated" true (Chase.is_model r);
  (* chain of length 3: A0, R0, A1, R1, A2, R2, A3 = 7 facts *)
  check_int "facts" 7 (Instance.fact_count r.Chase.instance)

let suite =
  [ case "full tgd chase (transitive closure)" test_full_tgd_chase;
    case "existential chase terminates" test_existential_chase_terminates;
    case "restricted reuses witnesses" test_restricted_reuses_witnesses;
    case "oblivious fires anyway" test_oblivious_fires_anyway;
    case "non-terminating hits budget" test_nonterminating_hits_budget;
    case "max_facts budget" test_budget_max_facts;
    case "sound prefix (universality)" test_sound_prefix;
    case "empty Σ" test_empty_sigma;
    case "bodiless tgd" test_bodiless_tgd_chase;
    case "tgd interaction" test_multiple_tgds_interaction;
    case "recursive existential diverges" test_recursive_existential_diverges;
    case "DL-Lite family" test_dl_lite_family_chase
  ]
