(* The shard fleet's pure half: rendezvous placement is a stable
   permutation with minimal movement, and the routing digest keys on the
   ontology text (folding batches), so equal rule sets share a shard and
   its warm caches.

   The process-level properties — respawn under kill -9, failover
   byte-identity, degraded-mode shedding — live in the separate
   [test_fleet_proc] executable: OCaml's [Unix.fork] is permanently
   refused once a process has ever spawned a domain, and the shared test
   binary runs pool and dispatcher suites (which do) before this one. *)

open Helpers
module Json = Tgd_serve.Json
module Fleet = Tgd_net.Fleet

let req src =
  match Json.of_string src with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad test request %s: %s" src m

let prop_rank_stable_permutation =
  QCheck.Test.make ~name:"shard_rank is a stable permutation" ~count:300
    QCheck.(pair string (int_range 1 12))
    (fun (digest, shards) ->
      let rank = Fleet.shard_rank ~shards digest in
      rank = Fleet.shard_rank ~shards digest
      && List.sort compare rank = List.init shards Fun.id
      && Fleet.shard_of_digest ~shards digest = List.hd rank)

(* Rendezvous minimal movement: dropping the highest shard index leaves
   every other shard's score untouched, so the n-1 ranking is exactly
   the n ranking with that shard deleted — in particular a digest only
   changes home shard if its home was the one removed. *)
let prop_rank_minimal_movement =
  QCheck.Test.make ~name:"shard_rank moves only the removed shard's keys"
    ~count:300
    QCheck.(pair string (int_range 2 12))
    (fun (digest, shards) ->
      Fleet.shard_rank ~shards:(shards - 1) digest
      = List.filter (fun i -> i <> shards - 1)
          (Fleet.shard_rank ~shards digest))

(* With enough distinct ontologies, every shard of a small fleet owns at
   least one — the multi-ontology workload really does spread. *)
let test_multi_workload_spreads () =
  let homes =
    List.init 32 (fun i ->
        Tgd_net.Loadgen.multi_workload ~ontologies:32 ~distinct:1 () i
        |> Fleet.request_digest
        |> Fleet.shard_of_digest ~shards:4)
  in
  List.iter
    (fun shard ->
      check_bool
        (Printf.sprintf "shard %d owns some ontology" shard)
        true (List.mem shard homes))
    [ 0; 1; 2; 3 ]

let test_request_digest_keys_on_tgds () =
  let entail tgds goal =
    req
      (Printf.sprintf
         {| {"id":1,"op":"entail","tgds":"%s","goal":"%s"} |} tgds goal)
  in
  let d1 = Fleet.request_digest (entail "E(x,y) -> S(y)." "E(x,y) -> S(y).")
  and d2 = Fleet.request_digest (entail "E(x,y) -> S(y)." "S(x) -> S(x).")
  and d3 = Fleet.request_digest (entail "E(x,y) -> T(y)." "E(x,y) -> S(y).") in
  check_bool "same ontology, same shard key" true (d1 = d2);
  check_bool "different ontology, different key" true (d1 <> d3);
  let batch subs =
    Json.Obj
      [ ("id", Json.Int 1);
        ("op", Json.String "batch");
        ("requests", Json.List subs)
      ]
  in
  let b1 = batch [ entail "E(x,y) -> S(y)." "g" ]
  and b2 = batch [ entail "E(x,y) -> T(y)." "g" ] in
  check_bool "batch folds member ontologies" true
    (Fleet.request_digest b1 <> Fleet.request_digest b2)

let suite =
  [ QCheck_alcotest.to_alcotest prop_rank_stable_permutation;
    QCheck_alcotest.to_alcotest prop_rank_minimal_movement;
    case "multi-ontology workload spreads across shards"
      test_multi_workload_spreads;
    case "request digest keys on the ontology"
      test_request_digest_keys_on_tgds
  ]
