open Tgd_syntax
open Tgd_instance
open Tgd_chase
open Helpers

let s = schema [ ("Emp", 2); ("Mgr", 2); ("Dept", 1); ("Boss", 1) ]

let key_egd =
  (* Emp(x,d), Emp(x,d') → d = d' : an employee has one department *)
  Egd.make
    ~body:
      [ Atom.of_vars (Relation.make "Emp" 2) [ v "x"; v "d" ];
        Atom.of_vars (Relation.make "Emp" 2) [ v "x"; v "d'" ] ]
    (v "d") (v "d'")

let theory_of ?(egds = []) ?(denials = []) tgds = Theory.{ tgds; egds; denials }

let test_satisfies () =
  let th = theory_of ~egds:[ key_egd ] [ tgd "Emp(x,d) -> Dept(d)." ] in
  check_bool "model" true
    (Theory.satisfies (inst ~schema:s "Emp(a,cs). Dept(cs).") th);
  check_bool "tgd violated" false
    (Theory.satisfies (inst ~schema:s "Emp(a,cs).") th);
  check_bool "egd violated" false
    (Theory.satisfies (inst ~schema:s "Emp(a,cs). Emp(a,math). Dept(cs). Dept(math).") th)

let test_chase_merges_nulls () =
  (* every dept has a manager (null); the key egd for Mgr merges the nulls
     produced for the same department *)
  let mgr_key =
    Egd.make
      ~body:
        [ Atom.of_vars (Relation.make "Mgr" 2) [ v "d"; v "m" ];
          Atom.of_vars (Relation.make "Mgr" 2) [ v "d"; v "m'" ] ]
      (v "m") (v "m'")
  in
  let th =
    theory_of ~egds:[ mgr_key ]
      [ tgd "Dept(d) -> exists m. Mgr(d,m)."; tgd "Emp(x,d) -> Dept(d)." ]
  in
  (* two tgds firing Mgr for the same dept via different routes *)
  let db = inst ~schema:s "Emp(a,cs). Dept(cs)." in
  let r = Theory.chase th db in
  check_bool "model" true (r.Theory.outcome = Theory.Model);
  check_bool "satisfies theory" true (Theory.satisfies r.Theory.instance th);
  (* exactly one manager fact for cs *)
  check_int "one Mgr fact" 1
    (Fact.Set.cardinal (Instance.facts_of r.Theory.instance (Relation.make "Mgr" 2)))

let test_chase_rigid_clash () =
  let th = theory_of ~egds:[ key_egd ] [] in
  let db = inst ~schema:s "Emp(a,cs). Emp(a,math)." in
  let r = Theory.chase th db in
  (match r.Theory.outcome with
  | Theory.Failed (Theory.Egd_clash (_, x, y)) ->
    check_bool "clash on cs/math" true
      (List.sort Constant.compare [ x; y ]
      = List.sort Constant.compare [ c "cs"; c "math" ])
  | _ -> Alcotest.fail "expected a rigid clash")

let test_chase_null_merge_then_tgd () =
  (* merging can re-enable tgd triggers: chase iterates to a model *)
  let th =
    theory_of ~egds:[ key_egd ]
      [ tgd "Emp(x,d) -> exists e. Emp(e,d), Mgr(d,e)." ]
  in
  let db = inst ~schema:s "Emp(a,cs)." in
  let r = Theory.chase th db in
  check_bool "model" true (r.Theory.outcome = Theory.Model);
  check_bool "satisfies" true (Theory.satisfies r.Theory.instance th)

let test_denial () =
  let d =
    Denial.make
      [ Atom.of_vars (Relation.make "Emp" 2) [ v "x"; v "x" ] ]
  in
  let th = theory_of ~denials:[ d ] [] in
  let ok = Theory.chase th (inst ~schema:s "Emp(a,cs).") in
  check_bool "consistent" true (ok.Theory.outcome = Theory.Model);
  let bad = Theory.chase th (inst ~schema:s "Emp(a,a).") in
  (match bad.Theory.outcome with
  | Theory.Failed (Theory.Denial_violation _) -> ()
  | _ -> Alcotest.fail "expected denial violation")

let test_denial_triggered_by_tgds () =
  (* the violation appears only after a tgd fires *)
  let d = Denial.make [ Atom.of_vars (Relation.make "Dept" 1) [ v "x" ] ] in
  let th = theory_of ~denials:[ d ] [ tgd "Emp(x,d) -> Dept(d)." ] in
  let r = Theory.chase th (inst ~schema:s "Emp(a,cs).") in
  match r.Theory.outcome with
  | Theory.Failed (Theory.Denial_violation _) -> ()
  | _ -> Alcotest.fail "denial must fire after the tgd round"

let test_certain_boolean_mixed () =
  let th =
    theory_of ~egds:[ key_egd ]
      [ tgd "Emp(x,d) -> Dept(d)." ]
  in
  let db = inst ~schema:s "Emp(a,cs)." in
  let dept_cs = [ Atom.make (Relation.make "Dept" 1) [ Term.const (c "cs") ] ] in
  check_answer "Dept(cs) certain" Entailment.Proved
    (Theory.certain_boolean th db dept_cs);
  (* inconsistency entails everything *)
  let db_bad = inst ~schema:s "Emp(a,cs). Emp(a,math)." in
  check_answer "ex falso" Entailment.Proved
    (Theory.certain_boolean th db_bad
       [ Atom.make (Relation.make "Dept" 1) [ Term.const (c "nowhere") ] ])

let test_of_dependencies () =
  let deps = [ Dependency.tgd (tgd "Emp(x,d) -> Dept(d)."); Dependency.egd key_egd ] in
  let th = Theory.of_dependencies deps in
  check_int "tgds" 1 (List.length th.Theory.tgds);
  check_int "egds" 1 (List.length th.Theory.egds);
  check_int "denials" 0 (List.length th.Theory.denials)

let test_egd_merge_prefers_rigid () =
  (* chase null merged into the rigid constant, not vice versa *)
  let mgr_key =
    Egd.make
      ~body:
        [ Atom.of_vars (Relation.make "Mgr" 2) [ v "d"; v "m" ];
          Atom.of_vars (Relation.make "Mgr" 2) [ v "d"; v "m'" ] ]
      (v "m") (v "m'")
  in
  let th =
    theory_of ~egds:[ mgr_key ]
      [ tgd "Dept(d) -> exists m. Mgr(d,m), Boss(m).";
        tgd "Dept(d) -> exists m. Mgr(d,m), Emp(m,d)." ]
  in
  let db = inst ~schema:s "Dept(cs). Mgr(cs,carol)." in
  let r = Theory.chase th db in
  check_bool "model" true (r.Theory.outcome = Theory.Model);
  check_bool "merges happened" true (r.Theory.merges >= 2);
  check_bool "carol survives and absorbed the nulls" true
    (Instance.mem r.Theory.instance (Fact.make (Relation.make "Boss" 1) [ c "carol" ])
    && Instance.mem r.Theory.instance
         (Fact.make (Relation.make "Emp" 2) [ c "carol"; c "cs" ]));
  check_bool "no null remains" true
    (Constant.Set.for_all
       (fun x -> not (Constant.is_null x))
       (Instance.adom r.Theory.instance))

let test_dedup_renamed () =
  (* of_tgds drops later rules that are equal to an earlier one up to
     variable renaming, keeping the first spelling *)
  let a = tgd "Emp(x,d) -> Dept(d)." in
  let b = tgd "Emp(u,w) -> Dept(w)." in
  let c' = tgd "Emp(x,d) -> exists m. Mgr(d,m)." in
  let th = Theory.of_tgds [ a; b; c'; a ] in
  check_int "two survivors" 2 (List.length th.Theory.tgds);
  check_tgd "first spelling kept" a (List.nth th.Theory.tgds 0);
  check_tgd "distinct rule kept" c' (List.nth th.Theory.tgds 1);
  (* of_dependencies dedupes the tgd part the same way *)
  let th2 =
    Theory.of_dependencies
      [ Dependency.Tgd a; Dependency.Tgd b; Dependency.Egd key_egd ]
  in
  check_int "tgds deduped" 1 (List.length th2.Theory.tgds);
  check_int "egds kept" 1 (List.length th2.Theory.egds)

let suite =
  [ case "satisfies" test_satisfies;
    case "chase merges nulls" test_chase_merges_nulls;
    case "rigid clash fails" test_chase_rigid_clash;
    case "merge re-enables tgds" test_chase_null_merge_then_tgd;
    case "denial constraints" test_denial;
    case "denial after tgd round" test_denial_triggered_by_tgds;
    case "certain answers (mixed, ex falso)" test_certain_boolean_mixed;
    case "of_dependencies" test_of_dependencies;
    case "merge prefers rigid constants" test_egd_merge_prefers_rigid;
    case "duplicate tgds dropped up to renaming" test_dedup_renamed
  ]
