(* Benchmark & reproduction harness.

   The paper (PODS'21) is a theory paper: it has no measurement tables or
   figures.  Its reproducible artifacts are (a) the theorems/examples, which
   this harness re-verifies and prints as tables E1–E10 (see DESIGN.md and
   EXPERIMENTS.md), and (b) the complexity analyses of Section 9, whose
   *shape* (candidate-space growth, runtime scaling) is measured below with
   Bechamel — one Test.make per experiment — together with ablation benches
   for the design choices called out in DESIGN.md.

   Run with:  dune exec bench/main.exe *)

open Tgd_syntax
open Tgd_instance
open Tgd_core
open Tgd_workload
module Budget = Tgd_engine.Budget

let section title = Fmt.pr "@.=== %s ===@." title

let show_verdict : 'a. 'a Properties.verdict -> string = function
  | Properties.Holds -> "holds"
  | Properties.Fails _ -> "FAILS"
  | Properties.Inconclusive why -> "inconclusive: " ^ why

let row fmt = Fmt.pr fmt

(* ------------------------------------------------------------------ *)
(* E1 — Lemmas 3.2 / 3.4 / 3.6: necessary conditions, verified         *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1  Lemmas 3.2/3.4/3.6 — every TGD-ontology is critical, ⊗-closed, local";
  row "%-28s %-12s %-12s %-14s@." "Σ (family)" "critical≤3" "⊗-closed≤2" "(n,m)-local≤2";
  let families =
    [ ("symmetric", Tgd_parse.Parse.tgds_exn "E(x,y) -> E(y,x).", 2, 0);
      ("succ (existential)", Tgd_parse.Parse.tgds_exn "E(x,y) -> exists z. E(y,z).", 2, 1);
      ("separation Σ_G", fst Families.separation_linear_vs_guarded, 2, 0);
      ("guarded_rewritable 1", Families.guarded_rewritable 1, 2, 0) ]
  in
  List.iter
    (fun (name, sigma, n, m) ->
      let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
      let local =
        match Budget.value (Locality.check_local_up_to Locality.Plain ~n ~m o 2) with
        | Locality.Local_on_tests -> "holds"
        | Locality.Not_local _ -> "FAILS"
      in
      row "%-28s %-12s %-12s %-14s@." name
        (show_verdict (Properties.critical_up_to o 3))
        (show_verdict (Properties.closed_under_products o ~dom_size:2))
        local)
    families

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 4.1 synthesis                                           *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2  Theorem 4.1 — synthesis of Σ^∃ from membership oracles";
  let s_e = Schema.of_pairs [ ("E", 2) ] in
  row "%-34s %-8s %-8s %-10s@." "oracle" "(n,m)" "|Σ^∃|" "verified≤2";
  let cases =
    [ ("Mod(E(x,y)→E(y,x))", s_e,
       (fun i -> Satisfaction.tgds i (Tgd_parse.Parse.tgds_exn "E(x,y) -> E(y,x).")), 2, 0);
      ("Mod(E(x,y)→∃z E(y,z))", s_e,
       (fun i -> Satisfaction.tgds i (Tgd_parse.Parse.tgds_exn "E(x,y) -> exists z. E(y,z).")), 2, 1);
      ("¬tgd: |facts| ≤ 2", s_e, (fun i -> Instance.fact_count i <= 2), 2, 1) ]
  in
  List.iter
    (fun (name, s, oracle, n, m) ->
      let o = Ontology.oracle ~name s oracle in
      let sigma = Budget.value (Characterize.synthesize o ~n ~m) in
      let verified =
        match Characterize.verify_axiomatization o sigma ~dom_size:2 with
        | None -> "yes"
        | Some _ -> "NO (not a TGD-ontology)"
      in
      row "%-34s (%d,%d)    %-8d %-10s@." name n m (List.length sigma) verified)
    cases

(* ------------------------------------------------------------------ *)
(* E3 — Example 5.2 and Theorem 5.6                                     *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3  Example 5.2 — Makowsky–Vardi Lemma 7 refuted; Theorem 5.6 suite";
  let sigma, i = Families.example_5_2 in
  let a = Constant.named "a" and c = Constant.named "c" in
  row "I ⊨ σ:                       %b (paper: true)@." (Satisfaction.tgds i sigma);
  row "oblivious ext J ⊨ σ:         %b (paper: false — Lemma 7 of [14] fails)@."
    (Satisfaction.tgds (Duplicating.oblivious i a c) sigma);
  row "non-oblivious ext J' ⊨ σ:    %b (paper: true — Definition 5.3)@."
    (Satisfaction.tgds (Duplicating.non_oblivious i a c) sigma);
  let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
  row "Theorem 5.6 (1)⇒(2) suite:  1-critical %s, dom-indep %s, ∩-closed %s, non-obl-dupext %s@."
    (show_verdict (Properties.critical_up_to o 1))
    (show_verdict (Properties.domain_independent o ~dom_size:2))
    (show_verdict (Properties.closed_under_intersections o ~dom_size:2))
    (show_verdict (Properties.closed_under_non_oblivious_dupext o ~dom_size:2))

(* ------------------------------------------------------------------ *)
(* E4/E5 — Section 9.1 separations                                      *)
(* ------------------------------------------------------------------ *)

let separation_row name variant ~n ~m (sigma, i) =
  let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
  let emb =
    match Locality.locally_embeddable variant ~n ~m o i with
    | Locality.Embeddable -> "yes"
    | Locality.No_witness _ -> "no"
  in
  let verdict =
    match Budget.value (Locality.check_local_on variant ~n ~m o [ i ]) with
    | Locality.Not_local _ -> "NOT local (separation confirmed)"
    | Locality.Local_on_tests -> "no counterexample"
  in
  row "%-10s %-26s emb=%-4s I⊨Σ=%-6b %s@." name
    (Printf.sprintf "%s (%d,%d)-locality" (Locality.variant_name variant) n m)
    emb (Satisfaction.tgds i sigma) verdict

let e4_e5 () =
  section "E4/E5  Section 9.1 — semantic separations via refined locality";
  separation_row "E4 Σ_G" Locality.Linear ~n:1 ~m:0 Families.separation_linear_vs_guarded;
  separation_row "E5 Σ_F" Locality.Guarded ~n:2 ~m:0 Families.separation_guarded_vs_fg

(* ------------------------------------------------------------------ *)
(* E6/E7 — Algorithms 1 and 2                                           *)
(* ------------------------------------------------------------------ *)

let rewrite_config body head =
  Rewrite.
    { default_config with
      caps = Candidates.{ max_body_atoms = body; max_head_atoms = head; keep_tautologies = false }
    }

(* The rewriting procedures grew a [?resume] checkpoint parameter; benches
   never resume, so eta-expand them to the shape the tables expect. *)
let g_to_l ?config sigma = Rewrite.g_to_l ?config sigma
let fg_to_g ?config sigma = Rewrite.fg_to_g ?config sigma

(* Wall clock, not [Sys.time]: CPU time would add worker-domain time up and
   hide any parallel speedup. *)
let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a.(Array.length a / 2)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rewrite_table name algo inputs =
  row "%-26s %-6s %-10s %-10s %-28s %-8s@." name "k" "enum" "entailed" "outcome" "time(s)";
  List.iter
    (fun (label, k, sigma, config) ->
      let report, dt =
        time_it (fun () -> Budget.value (algo ?config:(Some config) sigma))
      in
      let outcome =
        match report.Rewrite.outcome with
        | Rewrite.Rewritable s -> Printf.sprintf "rewritable (%d tgds)" (List.length s)
        | Rewrite.Not_rewritable { complete; _ } ->
          if complete then "not rewritable (definitive)" else "not rewritable (capped)"
        | Rewrite.Unknown _ -> "unknown"
      in
      row "%-26s %-6d %-10d %-10d %-28s %.3f@." label k
        report.Rewrite.candidates_enumerated report.Rewrite.candidates_entailed
        outcome dt)
    inputs

let e6 () =
  section "E6  Theorem 9.1 / Algorithm 1 — Rewrite(GTGD, LTGD)";
  rewrite_table "G-to-L" g_to_l
    (List.concat_map
       (fun k ->
         [ (Printf.sprintf "rewritable(%d)" k, k, Families.guarded_rewritable k,
            rewrite_config 2 1);
           (Printf.sprintf "unrewritable(%d)" k, k, Families.guarded_unrewritable k,
            rewrite_config 8 8) ])
       [ 1; 2 ])

let e7 () =
  section "E7  Theorem 9.2 / Algorithm 2 — Rewrite(FGTGD, GTGD)";
  rewrite_table "FG-to-G" fg_to_g
    [ ("rewritable(1)", 1, Families.fg_rewritable 1, rewrite_config 2 1);
      ("unrewritable(1)", 1, Families.fg_unrewritable 1, rewrite_config 8 8);
      (* k = 2 doubles the schema; a definitive answer would need an
         uncapped 10^6-candidate sweep, so this row measures the capped
         scaling behaviour instead *)
      ("unrewritable(2)", 2, Families.fg_unrewritable 2, rewrite_config 2 1) ]

let e6_scaling () =
  section "E6b  Algorithm 1 scaling — wall time vs. ontology size and arity";
  row "%-30s %-8s %-10s %-12s@." "family" "k" "enum" "time(s)";
  List.iter
    (fun (name, sigma) ->
      let report, dt =
        time_it (fun () ->
            Budget.value (Rewrite.g_to_l ~config:(rewrite_config 2 1) sigma))
      in
      ignore report.Rewrite.outcome;
      row "%-30s %-8d %-10d %-12.3f@." name (List.length sigma / 2)
        report.Rewrite.candidates_enumerated dt)
    (List.map
       (fun k -> (Printf.sprintf "guarded_rewritable(%d)" k, Families.guarded_rewritable k))
       [ 1; 2; 3; 4 ]
    @ List.map
        (fun k ->
          (Printf.sprintf "guarded_rewritable_wide(%d)" k,
           Families.guarded_rewritable_wide k))
        [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* E8 — Section 9.2 counting bounds vs. measured enumeration            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Section 9.2 — candidate-space bounds vs. measured (canonical) enumeration";
  row "%-26s %-8s %-14s %-22s %-10s@." "schema" "(n,m)" "enumerated" "paper bound" "ratio";
  let caps = Candidates.{ max_body_atoms = 10; max_head_atoms = 10; keep_tautologies = true } in
  let cases =
    [ (Schema.of_pairs [ ("R", 1) ], 1, 0); (Schema.of_pairs [ ("R", 1) ], 1, 1);
      (Schema.of_pairs [ ("R", 1); ("P", 1); ("T", 1) ], 1, 0);
      (Schema.of_pairs [ ("R", 1); ("P", 1); ("T", 1) ], 1, 1);
      (Schema.of_pairs [ ("E", 2) ], 1, 1); (Schema.of_pairs [ ("E", 2) ], 2, 0);
      (Schema.of_pairs [ ("E", 2) ], 2, 1) ]
  in
  List.iter
    (fun (s, n, m) ->
      let enumerated =
        Candidates.count
          (Seq.filter (fun t -> Tgd.body t <> []) (Candidates.linear ~caps s ~n ~m))
      in
      let bound = Counting.linear_candidates_bound s ~n ~m in
      let ratio =
        match Bigint.to_int_opt bound with
        | Some b when b > 0 -> Printf.sprintf "%.4f" (float_of_int enumerated /. float_of_int b)
        | _ -> "≈0"
      in
      row "%-26s (%d,%d)    %-14d %-22s %-10s@." (Schema.to_string s) n m enumerated
        (Bigint.to_string bound) ratio)
    cases;
  row "@.Double-exponential growth in ar(S) (GTGD bound, |S|=1, n=3, m=1):@.";
  List.iter
    (fun ar ->
      let s = Schema.of_pairs [ ("R", ar) ] in
      row "  ar=%d: %d decimal digits@." ar
        (Bigint.digits (Counting.guarded_candidates_bound s ~n:3 ~m:1)))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E9 — Appendix F reduction                                            *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9  Appendix F — hardness reduction, both polarities";
  let run name sigma_src =
    let sigma = Tgd_parse.Parse.tgds_exn sigma_src in
    let q = Option.get (Schema.find (Rewrite.schema_of sigma) "Q") in
    let art = Reduction.g_to_l_hardness sigma ~query:q in
    let equal =
      Tgd_chase.Entailment.equivalent art.Reduction.sigma' art.Reduction.witness_rewriting
    in
    row "%-34s |Σ'| = %-4d Σ' ≡ Σ_L: %-12s@." name
      (List.length art.Reduction.sigma')
      (Tgd_chase.Entailment.answer_to_string equal)
  in
  run "Σ ⊨ ∃Q (expect equivalent)" "-> exists z. A(z).\nA(x) -> B(x).\nB(x) -> Q(x).";
  run "Σ ⊭ ∃Q (expect disproved)" "A(x) -> B(x).\nQ(x) -> Q(x)."

(* ------------------------------------------------------------------ *)
(* E10 — Linearization/Guardedization Lemmas: variable-count bounds     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10  Lemmas 6.3/7.3 — rewritings stay within TGD_{n,m}";
  let check name algo sigma config =
    let n, m = Rewrite.class_bounds sigma in
    match (Budget.value (algo ?config:(Some config) sigma)).Rewrite.outcome with
    | Rewrite.Rewritable sigma' ->
      let ok = List.for_all (Tgd.in_class_nm ~n ~m) sigma' in
      row "%-26s input (n,m)=(%d,%d): output within bounds: %b@." name n m ok
    | _ -> row "%-26s not rewritable — vacuous@." name
  in
  check "G-to-L guarded_rewritable" g_to_l (Families.guarded_rewritable 1)
    (rewrite_config 2 1);
  check "FG-to-G fg_rewritable" fg_to_g (Families.fg_rewritable 1)
    (rewrite_config 2 1)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let chase_bench k =
  let sigma = Families.existential_chain k in
  let schema = Rewrite.schema_of sigma in
  let db =
    Tgd_instance.Instance.of_facts schema
      [ Fact.make (Option.get (Schema.find schema "E0"))
          [ Constant.named "a"; Constant.named "b" ] ]
  in
  Test.make ~name:(Printf.sprintf "chase/existential-chain-%d" k)
    (Staged.stage (fun () -> ignore (Tgd_chase.Chase.restricted sigma db)))

let chase_ablation =
  (* restricted vs oblivious on the same weakly-acyclic workload *)
  let sigma = Families.existential_chain 6 in
  let schema = Rewrite.schema_of sigma in
  let db =
    Tgd_instance.Instance.of_facts schema
      [ Fact.make (Option.get (Schema.find schema "E0"))
          [ Constant.named "a"; Constant.named "b" ] ]
  in
  [ Test.make ~name:"ablate-chase/restricted"
      (Staged.stage (fun () -> ignore (Tgd_chase.Chase.restricted sigma db)));
    Test.make ~name:"ablate-chase/oblivious"
      (Staged.stage (fun () -> ignore (Tgd_chase.Chase.oblivious sigma db)))
  ]

let hom_bench =
  let s = Schema.of_pairs [ ("E", 2) ] in
  let i = Gen.random_instance (Gen.rng 11) s ~dom_size:8 ~density:0.3 in
  let path k =
    List.init k (fun j ->
        Atom.of_vars (Relation.make "E" 2)
          [ Variable.indexed "v" j; Variable.indexed "v" (j + 1) ])
  in
  List.map
    (fun k ->
      Test.make ~name:(Printf.sprintf "hom/path-%d" k)
        (Staged.stage (fun () -> ignore (Hom.exists_hom (path k) i))))
    [ 2; 4; 6 ]

let product_bench =
  let s = Schema.of_pairs [ ("E", 2) ] in
  let i = Gen.random_instance (Gen.rng 3) s ~dom_size:6 ~density:0.4 in
  Test.make ~name:"product/6x6" (Staged.stage (fun () -> ignore (Product.direct i i)))

let structured_instance_bench =
  (* chase of transitive closure over structured graphs *)
  let tc =
    Tgd_parse.Parse.tgds_exn "E(x,y) -> T(x,y).\nT(x,y), E(y,z) -> T(x,z)."
  in
  let widen i =
    Tgd_instance.Instance.of_facts
      (Rewrite.schema_of tc)
      (Tgd_instance.Instance.fact_list i)
  in
  [ Test.make ~name:"datalog/tc-grid-3x3"
      (Staged.stage (fun () ->
           ignore (Tgd_chase.Datalog.saturate tc (widen (Families.grid 3 3)))));
    Test.make ~name:"datalog/tc-cycle-8"
      (Staged.stage (fun () ->
           ignore (Tgd_chase.Datalog.saturate tc (widen (Families.cycle 8)))))
  ]

let candidates_bench =
  let s = Schema.of_pairs [ ("E", 2); ("P", 1) ] in
  let caps = Candidates.{ max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false } in
  List.map
    (fun n ->
      Test.make ~name:(Printf.sprintf "candidates/linear-n%d-m1" n)
        (Staged.stage (fun () ->
             ignore (Candidates.count (Candidates.linear ~caps s ~n ~m:1)))))
    [ 1; 2; 3 ]

let candidates_ablation =
  (* tautology pruning on/off *)
  let s = Schema.of_pairs [ ("E", 2); ("P", 1) ] in
  let mk keep name =
    let caps = Candidates.{ max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = keep } in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Candidates.count (Candidates.linear ~caps s ~n:2 ~m:1))))
  in
  [ mk false "ablate-taut/pruned"; mk true "ablate-taut/kept" ]

let g2l_bench =
  List.map
    (fun k ->
      let sigma = Families.guarded_rewritable k in
      Test.make ~name:(Printf.sprintf "g2l/rewritable-%d" k)
        (Staged.stage (fun () ->
             ignore (Rewrite.g_to_l ~config:(rewrite_config 2 1) sigma))))
    [ 1; 2 ]

let g2l_ablation =
  let sigma = Families.guarded_rewritable 2 in
  let mk do_minimize name =
    let config = Rewrite.{ (rewrite_config 2 1) with minimize = do_minimize } in
    Test.make ~name (Staged.stage (fun () -> ignore (Rewrite.g_to_l ~config sigma)))
  in
  [ mk true "ablate-minimize/on"; mk false "ablate-minimize/off" ]

let fg2g_bench =
  let sigma = Families.fg_rewritable 1 in
  Test.make ~name:"fg2g/rewritable-1"
    (Staged.stage (fun () -> ignore (Rewrite.fg_to_g ~config:(rewrite_config 2 1) sigma)))

let locality_bench =
  let sigma, i = Families.separation_linear_vs_guarded in
  let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
  [ Test.make ~name:"locality/linear-emb"
      (Staged.stage (fun () ->
           ignore (Locality.locally_embeddable Locality.Linear ~n:1 ~m:0 o i)));
    Test.make ~name:"locality/plain-emb"
      (Staged.stage (fun () ->
           ignore (Locality.locally_embeddable Locality.Plain ~n:2 ~m:0 o i)))
  ]

let locality_ablation =
  (* chase-only vs enumerate-only witness search *)
  let sigma, i = Families.separation_linear_vs_guarded in
  let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
  let mk strategy name =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Locality.locally_embeddable ~strategy Locality.Linear ~n:1 ~m:0 o i)))
  in
  [ mk Locality.{ use_chase = Some Tgd_chase.Chase.default_budget; enumerate_extra = None }
      "ablate-witness/chase-only";
    mk Locality.{ use_chase = None; enumerate_extra = Some 1 }
      "ablate-witness/enumerate-only"
  ]

let datalog_ablation =
  (* semi-naive Datalog vs the generic restricted chase on the same
     full-tgd workload: transitive closure of an 8-chain *)
  let sigma =
    Tgd_parse.Parse.tgds_exn "E(x,y) -> T(x,y).\nT(x,y), E(y,z) -> T(x,z)."
  in
  let schema = Rewrite.schema_of sigma in
  let db =
    Tgd_instance.Instance.of_facts schema
      (List.init 8 (fun i ->
           Fact.make (Relation.make "E" 2)
             [ Constant.indexed i; Constant.indexed (i + 1) ]))
  in
  [ Test.make ~name:"ablate-datalog/semi-naive"
      (Staged.stage (fun () -> ignore (Tgd_chase.Datalog.saturate sigma db)));
    Test.make ~name:"ablate-datalog/restricted-chase"
      (Staged.stage (fun () -> ignore (Tgd_chase.Chase.restricted sigma db)))
  ]

let theory_bench =
  let prog =
    Tgd_parse.Parse.program_exn
      "SrcEmp(e,d) -> Emp(e), Dept(d).\nDept(d) -> exists m. Mgr(d,m).\nMgr(d,m), Mgr(d,m') -> m = m'."
  in
  let schema = prog.Tgd_parse.Parse.schema in
  let db =
    Tgd_instance.Instance.of_facts schema
      (Tgd_parse.Parse.program_exn ~schema
         "SrcEmp(a,cs). SrcEmp(b,cs). SrcEmp(c,math). Mgr(cs,m1).").Tgd_parse.Parse.facts
  in
  let theory =
    Tgd_chase.Theory.
      { tgds = prog.Tgd_parse.Parse.tgds;
        egds = prog.Tgd_parse.Parse.egds;
        denials = prog.Tgd_parse.Parse.denials
      }
  in
  Test.make ~name:"theory-chase/exchange"
    (Staged.stage (fun () -> ignore (Tgd_chase.Theory.chase theory db)))

let retract_bench =
  let s = Schema.of_pairs [ ("E", 2) ] in
  let i = Gen.random_instance (Gen.rng 21) s ~dom_size:5 ~density:0.5 in
  Test.make ~name:"retract/core-5x5"
    (Staged.stage (fun () -> ignore (Retract.core i)))

let refutation_bench =
  let sigma = Tgd_parse.Parse.tgds_exn "E(x,y) -> exists z. E(y,z)." in
  let goal = Tgd_parse.Parse.tgd_exn "E(x,y) -> F(x,y)." in
  Test.make ~name:"refutation/looping-vs-F"
    (Staged.stage (fun () ->
         ignore
           (Refutation.entails
              ~budget:(Budget.limits ~rounds:4 ~facts:50)
              sigma goal)))

let synthesis_bench =
  let s = Schema.of_pairs [ ("E", 2) ] in
  let o =
    Ontology.oracle ~name:"sym" s (fun i ->
        Satisfaction.tgds i (Tgd_parse.Parse.tgds_exn "E(x,y) -> E(y,x)."))
  in
  Test.make ~name:"synthesis/symmetric-n2-m0"
    (Staged.stage (fun () -> ignore (Characterize.synthesize o ~n:2 ~m:0)))

let all_bench_tests =
  [ chase_bench 3; chase_bench 6; chase_bench 9 ]
  @ chase_ablation @ hom_bench
  @ [ product_bench ] @ structured_instance_bench
  @ candidates_bench @ candidates_ablation @ g2l_bench @ g2l_ablation
  @ [ fg2g_bench ]
  @ locality_bench @ locality_ablation
  @ datalog_ablation
  @ [ theory_bench; retract_bench; refutation_bench; synthesis_bench ]

let run_benchmarks () =
  section "Runtime benchmarks (Bechamel; ns per run, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%12.0f ns/run" e
            | Some [] | None -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "r²=%.3f" r
            | None -> ""
          in
          row "  %-34s %s  %s@." name est r2)
        analyzed)
    all_bench_tests

(* ------------------------------------------------------------------ *)
(* E11 — indexed semi-naive engine vs naive chase (BENCH_engine.json)   *)
(* ------------------------------------------------------------------ *)

module Stats = Tgd_engine.Stats

type engine_side = {
  fired : int;
  scans : int;
  probes : int;
  rounds : int;
  delta : int;
  hit_rate : float;
  time_s : float;       (* median over the repetitions *)
  time_cold_s : float;  (* first (always cache-cold) repetition *)
}

(* Work counters come from the first (cold) repetition; the reported time is
   the median over all repetitions. *)
let side_of_stats (st : Stats.t) ~times =
  { fired = st.Stats.fired;
    scans = st.Stats.scans;
    probes = st.Stats.probes;
    rounds = st.Stats.rounds;
    delta = st.Stats.delta_facts;
    hit_rate = Stats.hit_rate st;
    time_s = median times;
    time_cold_s = List.hd times
  }

let side_json s =
  Printf.sprintf
    "{\"fired\": %d, \"scans\": %d, \"probes\": %d, \"rounds\": %d, \
     \"delta_facts\": %d, \"memo_hit_rate\": %.3f, \"time_s\": %.6f, \
     \"time_cold_s\": %.6f}"
    s.fired s.scans s.probes s.rounds s.delta s.hit_rate s.time_s s.time_cold_s

(* total matching work: triggers scanned plus index probes — the quantity
   the naive snapshot-rescan loop pays per round over the whole instance *)
let work s = s.scans + s.probes

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let chain_db k edges =
  let e0 = Relation.make "E0" 2 in
  Tgd_instance.Instance.of_facts (Families.chain_schema k)
    (List.init edges (fun i ->
         Fact.make e0
           [ Constant.named (Printf.sprintf "c%d" i);
             Constant.named (Printf.sprintf "c%d" (i + 1))
           ]))

let e11 ~reps () =
  section "E11  indexed semi-naive engine vs naive snapshot-rescan chase";
  row "(times: median of %d repetitions, wall clock)@." reps;
  let entries = Buffer.create 1024 in
  let first = ref true in
  let emit kind name naive engine =
    let fired_ratio = ratio naive.fired engine.fired in
    let work_ratio = ratio (work naive) (work engine) in
    if not !first then Buffer.add_string entries ",\n";
    first := false;
    Buffer.add_string entries
      (Printf.sprintf
         "    {\"kind\": \"%s\", \"name\": \"%s\",\n\
         \     \"naive\": %s,\n\
         \     \"engine\": %s,\n\
         \     \"fired_ratio\": %.2f, \"work_ratio\": %.2f}"
         kind name (side_json naive) (side_json engine) fired_ratio work_ratio);
    row "%-30s %8d %8d %9d %9d %6.1fx %6.1fx %5.0f%%@." name naive.fired
      engine.fired (work naive) (work engine) fired_ratio work_ratio
      (100. *. engine.hit_rate)
  in
  row "%-30s %8s %8s %9s %9s %7s %7s %6s@." "workload" "fired/n" "fired/e"
    "work/n" "work/e" "fired" "work" "memo/e";
  let chase_case name sigma db =
    (* naive: every repetition is cold *)
    let nruns =
      List.init reps (fun _ ->
          time_it (fun () -> Tgd_chase.Chase.restricted ~naive:true sigma db))
    in
    let n = fst (List.hd nruns) in
    (* engine: the chase-result cache stays warm across repetitions — the
       first repetition is the cold run the work counters come from, the
       rest replay from the cache, which is the hit rate the row reports *)
    Tgd_chase.Chase.clear_memo ();
    let before = Stats.copy (Stats.global ()) in
    let eruns =
      List.init reps (fun _ ->
          time_it (fun () -> Tgd_chase.Chase.restricted ~memo:true sigma db))
    in
    let cache_stats = Stats.diff (Stats.copy (Stats.global ())) before in
    let e = fst (List.hd eruns) in
    assert (
      Tgd_instance.Instance.fact_count n.Tgd_chase.Chase.instance
      = Tgd_instance.Instance.fact_count e.Tgd_chase.Chase.instance);
    emit "chase" name
      (side_of_stats n.Tgd_chase.Chase.stats ~times:(List.map snd nruns))
      { (side_of_stats e.Tgd_chase.Chase.stats ~times:(List.map snd eruns)) with
        hit_rate = Stats.hit_rate cache_stats
      }
  in
  chase_case "chase tc/clique(6)" Families.transitive_closure (Families.clique 6);
  chase_case "chase tc/cycle(12)" Families.transitive_closure (Families.cycle 12);
  chase_case "chase exist_chain(10)" (Families.existential_chain 10) (chain_db 10 4);
  let rewrite_case name algo sigma config =
    (* every repetition cold: both memo layers cleared first, so the median
       measures real work (the within-run entailment-memo hit rate is in
       the engine side's own stats) *)
    let run_side config =
      let runs =
        List.init reps (fun _ ->
            Tgd_chase.Entailment.clear_memos ();
            Tgd_chase.Chase.clear_memo ();
            time_it (fun () -> Budget.value (algo ?config:(Some config) sigma)))
      in
      side_of_stats (fst (List.hd runs)).Rewrite.stats
        ~times:(List.map snd runs)
    in
    let nside = run_side Rewrite.{ config with naive = true; memo = false } in
    let eside = run_side config in
    emit "rewrite" name nside eside
  in
  rewrite_case "g2l unrewritable(1) [9.1]" g_to_l
    (Families.guarded_unrewritable 1) (rewrite_config 8 8);
  rewrite_case "g2l rewritable(2)" g_to_l
    (Families.guarded_rewritable 2) (rewrite_config 2 1);
  rewrite_case "fg2g unrewritable(1) [9.1]" fg_to_g
    (Families.fg_unrewritable 1) (rewrite_config 8 8);
  let oc = open_out "BENCH_engine.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"engine_vs_naive\",\n  \"repetitions\": %d,\n\
    \  \"entries\": [\n%s\n  ]\n}\n"
    reps (Buffer.contents entries);
  close_out oc;
  row "@.BENCH_engine.json written@."

(* ------------------------------------------------------------------ *)
(* E12 — parallel candidate screening (BENCH_parallel.json)             *)
(* ------------------------------------------------------------------ *)

let e12 ~reps ~quick () =
  section "E12  Section 9 rewriting — candidate screening over worker domains";
  let cores = Domain.recommended_domain_count () in
  (* the full honesty ladder: rows whose jobs exceed the machine's cores are
     reported as skipped, never timed — a 1-core box oversubscribing 4
     domains would "measure" scheduler noise and call it a speedup curve *)
  let jobs_list = [ 1; 2; 4; 8 ] in
  row "(cores available: %d; times: median of %d cold repetitions; jobs \
       beyond the core count are skipped, not timed)@."
    cores reps;
  row "%-28s %5s %10s %8s %-18s %9s@." "workload" "jobs" "time(s)" "speedup"
    "outcome" "identical";
  let entries = Buffer.create 1024 in
  let first_entry = ref true in
  let outcome_sig (r : Rewrite.report) =
    match r.Rewrite.outcome with
    | Rewrite.Rewritable s -> Printf.sprintf "rewritable(%d)" (List.length s)
    | Rewrite.Not_rewritable _ -> "not-rewritable"
    | Rewrite.Unknown _ -> "unknown"
  in
  let workload name algo sigma config =
    let run jobs =
      let runs =
        List.init reps (fun _ ->
            (* cold every repetition: the curve measures screening work,
               not cache replays *)
            Tgd_chase.Entailment.clear_memos ();
            Tgd_chase.Chase.clear_memo ();
            time_it (fun () ->
                Budget.value
                  (algo ?config:(Some Rewrite.{ config with jobs }) sigma)))
      in
      (fst (List.hd runs), median (List.map snd runs))
    in
    (* jobs = 1 always runs — it is the baseline every speedup divides by *)
    let base_r, base_t = run 1 in
    let job_entries =
      List.map
        (fun jobs ->
          if jobs > 1 && cores < jobs then begin
            row "%-28s %5d %10s %8s %-18s@." name jobs "-" "-"
              (Printf.sprintf "skipped (%d cores)" cores);
            Printf.sprintf
              "      {\"jobs\": %d, \"cores\": %d, \
               \"skipped_insufficient_cores\": true}"
              jobs cores
          end
          else begin
            let (r : Rewrite.report), t =
              if jobs = 1 then (base_r, base_t) else run jobs
            in
            let identical =
              outcome_sig r = outcome_sig base_r
              && r.Rewrite.candidates_enumerated
                 = base_r.Rewrite.candidates_enumerated
              && r.Rewrite.candidates_entailed
                 = base_r.Rewrite.candidates_entailed
            in
            let speedup = if t > 0. then base_t /. t else 1. in
            row "%-28s %5d %10.4f %7.2fx %-18s %9b@." name jobs t speedup
              (outcome_sig r) identical;
            Printf.sprintf
              "      {\"jobs\": %d, \"cores\": %d, \"time_s\": %.6f, \
               \"speedup\": %.3f, \"outcome\": \"%s\", \
               \"candidates_enumerated\": %d, \"candidates_entailed\": %d, \
               \"identical\": %b}"
              jobs cores t speedup (outcome_sig r)
              r.Rewrite.candidates_enumerated r.Rewrite.candidates_entailed
              identical
          end)
        jobs_list
    in
    if not !first_entry then Buffer.add_string entries ",\n";
    first_entry := false;
    Buffer.add_string entries
      (Printf.sprintf "    {\"name\": \"%s\", \"runs\": [\n%s\n    ]}" name
         (String.concat ",\n" job_entries))
  in
  workload "g2l rewritable(2)" g_to_l (Families.guarded_rewritable 2)
    (rewrite_config 2 1);
  workload "g2l rewritable_wide(2)" g_to_l
    (Families.guarded_rewritable_wide 2) (rewrite_config 2 1);
  workload "g2l unrewritable(1) [9.1]" g_to_l
    (Families.guarded_unrewritable 1) (rewrite_config 8 8);
  workload "fg2g unrewritable(1) [9.1]" fg_to_g
    (Families.fg_unrewritable 1) (rewrite_config 8 8);
  (* the scalable rows: hundreds of rules, candidate spaces in the 10⁴–10⁵
     range — enough per-sweep work for chunked dispatch to amortise.
     [minimize = false] keeps the row a pure screening measurement (greedy
     minimisation is sequential and would dilute the curve). *)
  let layered_copies, layered_depth = if quick then (4, 2) else (6, 2) in
  workload
    (Printf.sprintf "g2l layered(%dx%d)" layered_copies layered_depth)
    g_to_l
    (Families.layered ~copies:layered_copies ~depth:layered_depth)
    { (rewrite_config 2 1) with minimize = false };
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"parallel_screening\",\n  \"cores\": %d,\n\
    \  \"repetitions\": %d,\n  \"entries\": [\n%s\n  ]\n}\n"
    cores reps (Buffer.contents entries);
  close_out oc;
  row "@.BENCH_parallel.json written@."

(* ------------------------------------------------------------------ *)
(* E13 — resource-governance overhead and truncation accuracy           *)
(*       (BENCH_robust.json)                                            *)
(* ------------------------------------------------------------------ *)

let e13 ~reps () =
  section "E13  budget governance: overhead on governed-but-untripped runs";
  row "(times: median of %d cold repetitions)@." reps;
  (* a budget whose limits are far out of reach: every check is paid, none
     trips — the pure cost of governance *)
  let far_budget () =
    Budget.make ~rounds:max_int ~facts:max_int ~fuel:max_int ~timeout_s:3600.
      ()
  in
  let overhead_entries = Buffer.create 1024 in
  let first = ref true in
  row "%-30s %12s %12s %9s@." "workload" "plain(s)" "governed(s)" "overhead";
  let overhead_case name plain governed =
    let cold f =
      List.init reps (fun _ ->
          Tgd_chase.Entailment.clear_memos ();
          Tgd_chase.Chase.clear_memo ();
          snd (time_it f))
      |> median
    in
    let tp = cold plain in
    let tg = cold governed in
    let pct = if tp > 0. then 100. *. (tg -. tp) /. tp else 0. in
    row "%-30s %12.4f %12.4f %8.1f%%@." name tp tg pct;
    if not !first then Buffer.add_string overhead_entries ",\n";
    first := false;
    Buffer.add_string overhead_entries
      (Printf.sprintf
         "    {\"name\": \"%s\", \"plain_s\": %.6f, \"governed_s\": %.6f, \
          \"overhead_pct\": %.2f}"
         name tp tg pct)
  in
  let chase_workload name sigma db =
    overhead_case name
      (fun () -> ignore (Tgd_chase.Chase.restricted sigma db))
      (fun () ->
        ignore (Tgd_chase.Chase.restricted ~budget:(far_budget ()) sigma db))
  in
  chase_workload "chase tc/clique(6)" Families.transitive_closure
    (Families.clique 6);
  chase_workload "chase exist_chain(10)" (Families.existential_chain 10)
    (chain_db 10 4);
  let rewrite_workload name algo sigma config =
    overhead_case name
      (fun () -> ignore (Budget.value (algo ?config:(Some config) sigma)))
      (fun () ->
        ignore
          (Budget.value
             (algo
                ?config:
                  (Some Rewrite.{ config with budget = far_budget () })
                sigma)))
  in
  rewrite_workload "g2l rewritable(2)" g_to_l
    (Families.guarded_rewritable 2) (rewrite_config 2 1);
  rewrite_workload "fg2g unrewritable(1) [9.1]" fg_to_g
    (Families.fg_unrewritable 1) (rewrite_config 8 8);
  (* time-to-truncation: a non-terminating chase under a wall-clock
     deadline; how soon past the deadline does the engine actually stop? *)
  section "E13  time-to-truncation accuracy (non-terminating chase)";
  row "%-14s %12s %12s %10s@." "deadline(s)" "stopped(s)" "excess(s)"
    "truncated";
  let nonterm = Tgd_parse.Parse.tgds_exn "E(x,y) -> exists z. E(y,z)." in
  let nonterm_db =
    let schema = Rewrite.schema_of nonterm in
    Tgd_instance.Instance.of_facts schema
      [ Fact.make (Option.get (Schema.find schema "E"))
          [ Constant.named "a"; Constant.named "b" ] ]
  in
  let trunc_entries = Buffer.create 1024 in
  let first_t = ref true in
  List.iter
    (fun deadline ->
      let budget = Budget.make ~rounds:max_int ~facts:max_int
          ~timeout_s:deadline ()
      in
      let r, elapsed =
        time_it (fun () ->
            Tgd_chase.Chase.restricted ~budget nonterm nonterm_db)
      in
      let truncated =
        match r.Tgd_chase.Chase.outcome with
        | Tgd_chase.Chase.Truncated Budget.Deadline -> true
        | _ -> false
      in
      let excess = elapsed -. deadline in
      row "%-14.2f %12.4f %12.4f %10b@." deadline elapsed excess truncated;
      if not !first_t then Buffer.add_string trunc_entries ",\n";
      first_t := false;
      Buffer.add_string trunc_entries
        (Printf.sprintf
           "    {\"deadline_s\": %.2f, \"stopped_s\": %.6f, \
            \"excess_s\": %.6f, \"truncated\": %b}"
           deadline elapsed excess truncated))
    [ 0.05; 0.1; 0.2 ];
  let oc = open_out "BENCH_robust.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"governance_overhead\",\n  \"repetitions\": %d,\n\
    \  \"overhead_target_pct\": 3.0,\n  \"overhead\": [\n%s\n  ],\n\
    \  \"truncation\": [\n%s\n  ]\n}\n"
    reps
    (Buffer.contents overhead_entries)
    (Buffer.contents trunc_entries);
  close_out oc;
  row "@.BENCH_robust.json written@."

(* ------------------------------------------------------------------ *)
(* E14 — static analysis: candidate prefiltering, promotion, overhead    *)
(*       (BENCH_analysis.json)                                           *)
(* ------------------------------------------------------------------ *)

let e14 ~reps () =
  section "E14  static analysis: candidate-space reduction on rewriting";
  row "(times: median of %d cold repetitions)@." reps;
  row "%-28s %-8s %10s %10s %10s %10s %10s@." "workload" "analyze" "enum"
    "screened" "skipped" "entailed" "time(s)";
  let entries = Buffer.create 1024 in
  let first = ref true in
  let emit_entry str =
    if not !first then Buffer.add_string entries ",\n";
    first := false;
    Buffer.add_string entries str
  in
  let rewrite_case name algo sigma config =
    let run_side analyze =
      let runs =
        List.init reps (fun _ ->
            Tgd_chase.Entailment.clear_memos ();
            Tgd_chase.Chase.clear_memo ();
            time_it (fun () ->
                Budget.value
                  (algo ?config:(Some Rewrite.{ config with analyze }) sigma)))
      in
      (fst (List.hd runs), median (List.map snd runs))
    in
    let off, t_off = run_side false in
    let on, t_on = run_side true in
    let line (r : Rewrite.report) analyze t =
      row "%-28s %-8b %10d %10d %10d %10d %10.4f@." name analyze
        r.Rewrite.candidates_enumerated
        (r.Rewrite.candidates_enumerated - r.Rewrite.candidates_skipped)
        r.Rewrite.candidates_skipped r.Rewrite.candidates_entailed t
    in
    line off false t_off;
    line on true t_on;
    (* the prefilter must never change the verdict, only the work *)
    assert (
      match (off.Rewrite.outcome, on.Rewrite.outcome) with
      | Rewrite.Rewritable a, Rewrite.Rewritable b ->
        List.length a = List.length b
      | Rewrite.Not_rewritable _, Rewrite.Not_rewritable _ -> true
      | _ -> false);
    emit_entry
      (Printf.sprintf
         "    {\"kind\": \"rewrite\", \"name\": \"%s\", \
          \"enumerated\": %d, \"skipped_off\": %d, \"skipped_on\": %d, \
          \"chased_off\": %d, \"chased_on\": %d, \
          \"time_off_s\": %.6f, \"time_on_s\": %.6f}"
         name off.Rewrite.candidates_enumerated
         off.Rewrite.candidates_skipped on.Rewrite.candidates_skipped
         (off.Rewrite.candidates_enumerated - off.Rewrite.candidates_skipped)
         (on.Rewrite.candidates_enumerated - on.Rewrite.candidates_skipped)
         t_off t_on)
  in
  rewrite_case "g2l unrewritable(1) [9.1]" g_to_l
    (Families.guarded_unrewritable 1) (rewrite_config 8 8);
  rewrite_case "g2l rewritable(2)" g_to_l (Families.guarded_rewritable 2)
    (rewrite_config 2 1);
  rewrite_case "fg2g unrewritable(1) [9.1]" fg_to_g
    (Families.fg_unrewritable 1) (rewrite_config 8 8);
  rewrite_case "fg2g rewritable(1)" fg_to_g (Families.fg_rewritable 1)
    (rewrite_config 2 1);

  section "E14  certificate promotion: chase rounds recovered";
  row "%-28s %-10s %-24s %8s@." "workload" "analyze" "outcome" "rounds";
  let promo_entries = Buffer.create 1024 in
  let first_p = ref true in
  let promo_case name sigma db cap =
    let budget = Budget.limits ~rounds:cap ~facts:1_000_000 in
    let run analyze =
      Tgd_chase.Chase.clear_memo ();
      Tgd_chase.Chase.restricted ~budget ~analyze sigma db
    in
    let off = run false in
    let on = run true in
    let show (r : Tgd_chase.Chase.result) analyze =
      row "%-28s %-10b %-24s %8d@." name analyze
        (match r.Tgd_chase.Chase.outcome with
        | Tgd_chase.Chase.Terminated -> "model"
        | Tgd_chase.Chase.Truncated e ->
          Fmt.str "truncated (%a)" Budget.pp_exhaustion e)
        r.Tgd_chase.Chase.rounds
    in
    show off false;
    show on true;
    if not !first_p then Buffer.add_string promo_entries ",\n";
    first_p := false;
    Buffer.add_string promo_entries
      (Printf.sprintf
         "    {\"name\": \"%s\", \"round_cap\": %d, \
          \"model_off\": %b, \"model_on\": %b, \
          \"rounds_off\": %d, \"rounds_on\": %d}"
         name cap
         (Tgd_chase.Chase.is_model off)
         (Tgd_chase.Chase.is_model on)
         off.Tgd_chase.Chase.rounds on.Tgd_chase.Chase.rounds)
  in
  promo_case "exist_chain(10), cap 2" (Families.existential_chain 10)
    (chain_db 10 4) 2;
  promo_case "dl_lite(6), cap 2" (Families.dl_lite_roles 6)
    (let sigma = Families.dl_lite_roles 6 in
     let schema = Rewrite.schema_of sigma in
     Tgd_instance.Instance.of_facts schema
       [ Fact.make (Option.get (Schema.find schema "A0"))
           [ Constant.named "a" ] ])
    2;

  section "E14  analysis overhead: ~analyze:true vs false, same workload";
  row "%-28s %12s %12s %9s@." "workload" "off(s)" "on(s)" "overhead";
  let ov_entries = Buffer.create 1024 in
  let first_o = ref true in
  (* the front-end cost an engine run actually pays: a memoized certificate
     check (and, for rewriting, the relation-level prefilter).  Workloads
     where no promotion fires, so both sides do the same chase work. *)
  let overhead_case name work =
    let side analyze =
      List.init reps (fun _ ->
          Tgd_chase.Entailment.clear_memos ();
          Tgd_chase.Chase.clear_memo ();
          snd (time_it (fun () -> work ~analyze)))
      |> median
    in
    let t_off = side false in
    let t_on = side true in
    let pct = if t_off > 0. then 100. *. (t_on -. t_off) /. t_off else 0. in
    row "%-28s %12.4f %12.4f %8.2f%%@." name t_off t_on pct;
    if not !first_o then Buffer.add_string ov_entries ",\n";
    first_o := false;
    Buffer.add_string ov_entries
      (Printf.sprintf
         "    {\"name\": \"%s\", \"off_s\": %.6f, \
          \"on_s\": %.6f, \"overhead_pct\": %.3f}"
         name t_off t_on pct)
  in
  overhead_case "chase tc/clique(7)" (fun ~analyze ->
      ignore
        (Tgd_chase.Chase.restricted ~analyze Families.transitive_closure
           (Families.clique 7)));
  overhead_case "chase exist_chain(10)" (fun ~analyze ->
      ignore
        (Tgd_chase.Chase.restricted ~analyze
           (Families.existential_chain 10) (chain_db 10 4)));
  overhead_case "g2l rewritable(2)" (fun ~analyze ->
      ignore
        (Budget.value
           (g_to_l
              ?config:(Some Rewrite.{ (rewrite_config 2 1) with analyze })
              (Families.guarded_rewritable 2))));
  overhead_case "fg2g unrewritable(1) [9.1]" (fun ~analyze ->
      ignore
        (Budget.value
           (fg_to_g
              ?config:(Some Rewrite.{ (rewrite_config 8 8) with analyze })
              (Families.fg_unrewritable 1))));

  section "E14  termination lattice: certified sets beyond the WA/JA baseline";
  let module Lattice = Tgd_analysis.Lattice in
  let module Termination = Tgd_analysis.Termination in
  let module Cert = Tgd_analysis.Cert in
  let module Certcheck = Tgd_analysis.Certcheck in
  (* tight caps make the whole-set critical chase exhaust while each
     stratum still certifies — the stratified tier's reason to exist *)
  let strat_limits = { Lattice.default_limits with Lattice.facts = 6 } in
  let parse_fixture path =
    if Sys.file_exists path then
      match Tgd_parse.Parse.tgds (read_whole_file path) with
      | Ok sigma when sigma <> [] -> Some sigma
      | Ok _ | Error _ -> None
    else None
  in
  let named =
    [ ("tc (full)", Families.transitive_closure, None, true);
      ("exist_chain(6)", Families.existential_chain 6, None, true);
      ( "ja_swap",
        Tgd_parse.Parse.tgds_exn "A(x,y), A(y,x) -> exists z. A(x,z).",
        None,
        true );
      ( "msa_wins",
        Tgd_parse.Parse.tgds_exn
          "S(x) -> exists z. T(x,z). T(x,y) -> T(y,x). T(y,y) -> S(y).",
        None,
        true );
      ( "strat_pair (tight budget)",
        Tgd_parse.Parse.tgds_exn
          "S1(x) -> exists z. T1(x,z). T1(x,y) -> T1(y,x). T1(y,y) -> S1(y). \
           S2(x) -> exists z. T2(x,z). T2(x,y) -> T2(y,x). T2(y,y) -> S2(y).",
        Some strat_limits,
        true );
      ( "divergent",
        Tgd_parse.Parse.tgds_exn "E(x,y) -> exists z. E(y,z).",
        None,
        false )
    ]
    @ List.filter_map
        (fun path ->
          Option.map
            (fun sigma -> (Filename.basename path, sigma, None, true))
            (parse_fixture path))
        [ "data/gen_layered_6x2.dlp";
          "data/gen_layered_16x4.dlp";
          "data/gen_layered_exist_8x3.dlp"
        ]
  in
  row "%-28s %-10s %-26s %-8s %10s@." "fixture" "baseline" "lattice notion"
    "checker" "time(s)";
  let lat_entries = Buffer.create 1024 in
  let first_l = ref true in
  let n_baseline = ref 0
  and n_lattice = ref 0
  and n_lattice_only = ref 0
  and checker_fail = ref 0
  and mis_baseline = ref 0
  and mis_lattice = ref 0 in
  List.iter
    (fun (name, sigma, limits, terminating) ->
      let baseline = Termination.certificate sigma <> None in
      let cls, t =
        time_it (fun () -> Lattice.classify ?limits sigma)
      in
      let notion =
        match cls with
        | Some (n, _) -> Termination.cert_name n
        | None -> "none"
      in
      let checker =
        match cls with
        | None -> "n/a"
        | Some (_, cert) -> (
          match Certcheck.verify sigma (Cert.to_string sigma cert) with
          | Ok _ -> "pass"
          | Error _ ->
            incr checker_fail;
            "FAIL")
      in
      let certified = cls <> None in
      if baseline then incr n_baseline;
      if certified then incr n_lattice;
      if certified && not baseline then incr n_lattice_only;
      (* admission misclassification: a terminating set labeled Expensive
         (or a diverging one labeled Moderate) sends the request down the
         wrong path *)
      if terminating <> baseline then incr mis_baseline;
      if terminating <> certified then incr mis_lattice;
      row "%-28s %-10b %-26s %-8s %10.4f@." name baseline notion checker t;
      if not !first_l then Buffer.add_string lat_entries ",\n";
      first_l := false;
      Buffer.add_string lat_entries
        (Printf.sprintf
           "    {\"name\": \"%s\", \"terminating\": %b, \
            \"baseline_certified\": %b, \"lattice_certified\": %b, \
            \"notion\": \"%s\", \"checker_pass\": %b, \"time_s\": %.6f}"
           name terminating baseline certified notion
           (checker <> "FAIL") t))
    named;
  row "certified: baseline %d, lattice %d (lattice-only %d); admission \
       misclassified: baseline %d, lattice %d@."
    !n_baseline !n_lattice !n_lattice_only !mis_baseline !mis_lattice;

  let oc = open_out "BENCH_analysis.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"static_analysis\",\n  \"repetitions\": %d,\n\
    \  \"overhead_target_pct\": 5.0,\n  \"rewrite\": [\n%s\n  ],\n\
    \  \"promotion\": [\n%s\n  ],\n  \"overhead\": [\n%s\n  ],\n\
    \  \"lattice\": [\n%s\n  ],\n\
    \  \"lattice_summary\": {\"baseline_certified\": %d, \
     \"lattice_certified\": %d, \"lattice_only\": %d, \
     \"checker_failures\": %d, \"misclassified_baseline\": %d, \
     \"misclassified_lattice\": %d}\n}\n"
    reps
    (Buffer.contents entries)
    (Buffer.contents promo_entries)
    (Buffer.contents ov_entries)
    (Buffer.contents lat_entries)
    !n_baseline !n_lattice !n_lattice_only !checker_fail !mis_baseline
    !mis_lattice;
  close_out oc;
  row "@.BENCH_analysis.json written@."

(* ------------------------------------------------------------------ *)
(* E15 — crash recovery: checkpoint write overhead, resume-vs-cold,     *)
(*       request completion under injected faults (BENCH_recover.json)  *)
(* ------------------------------------------------------------------ *)

let e15 ~reps () =
  let module Snapshot = Tgd_engine.Snapshot in
  let module Delta_log = Tgd_engine.Delta_log in
  let module Chaos = Tgd_engine.Chaos in
  let module Stats = Tgd_engine.Stats in
  section "E15  crash recovery: checkpoint overhead, resume-vs-cold, faulty serve";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tgd_bench_recover_%d" (Unix.getpid ()))
  in
  (* an unrewritable input, so the candidate space is swept to the end —
     ~5k candidates / ~1.3k screening batches, i.e. many checkpoint
     opportunities.  Memoization is off so each candidate costs a real
     chase and the relative overhead numbers are stable. *)
  let sigma = Families.fg_unrewritable 3 in
  let base_config = { (rewrite_config 3 2) with Rewrite.memo = false } in
  let cold f =
    List.init reps (fun _ ->
        Tgd_chase.Entailment.clear_memos ();
        Tgd_chase.Chase.clear_memo ();
        snd (time_it f))
    |> median
  in
  (* -- checkpoint write overhead at several cadences ------------------ *)
  row "(times: median of %d cold repetitions)@." reps;
  row "%-22s %12s %12s %10s@." "cadence" "time(s)" "snapshots" "overhead";
  let ov_entries = Buffer.create 1024 in
  let store name = Rewrite.snapshot_store ~dir ~name in
  let run_with checkpoint checkpoint_every =
    ignore
      (Budget.value
         (Rewrite.fg_to_g
            ~config:{ base_config with Rewrite.checkpoint; checkpoint_every }
            sigma))
  in
  let baseline = cold (fun () -> run_with None 1) in
  row "%-22s %12.4f %12d %10s@." "none" baseline 0 "-";
  Buffer.add_string ov_entries
    (Printf.sprintf
       "    {\"every\": null, \"time_s\": %.6f, \"snapshots\": 0, \
        \"overhead_pct\": 0.0}" baseline);
  List.iter
    (fun every ->
      let st = store (Printf.sprintf "e15-every%d" every) in
      let snaps0 = (Stats.global ()).Stats.snapshots in
      let t = cold (fun () -> run_with (Some (Rewrite.Full st)) every) in
      Snapshot.remove st;
      let snaps =
        ((Stats.global ()).Stats.snapshots - snaps0) / reps
      in
      let pct =
        if baseline > 0. then 100. *. (t -. baseline) /. baseline else 0.
      in
      row "%-22s %12.4f %12d %9.1f%%@."
        (Printf.sprintf "every %d batches" every)
        t snaps pct;
      Buffer.add_string ov_entries
        (Printf.sprintf
           ",\n    {\"every\": %d, \"time_s\": %.6f, \"snapshots\": %d, \
            \"overhead_pct\": %.2f}"
           every t snaps pct))
    [ 1; 4; 16 ];
  (* -- incremental delta chain at the same cadences -------------------- *)
  section "E15  delta-chain overhead (same sweep, incremental sink)";
  row "%-22s %12s %12s %10s@." "cadence" "time(s)" "deltas" "overhead";
  let delta_entries = Buffer.create 1024 in
  let first_delta = ref true in
  List.iter
    (fun every ->
      let cfg =
        Rewrite.log_config ~dir ~name:(Printf.sprintf "e15-delta%d" every) ()
      in
      let recs0 = (Stats.global ()).Stats.delta_records in
      let t =
        cold (fun () ->
            Delta_log.remove cfg;
            run_with (Some (Rewrite.Incremental (Rewrite.start_log cfg))) every)
      in
      Delta_log.remove cfg;
      let recs = ((Stats.global ()).Stats.delta_records - recs0) / reps in
      let pct =
        if baseline > 0. then 100. *. (t -. baseline) /. baseline else 0.
      in
      row "%-22s %12.4f %12d %9.1f%%@."
        (Printf.sprintf "every %d batches" every)
        t recs pct;
      if not !first_delta then Buffer.add_string delta_entries ",\n";
      first_delta := false;
      Buffer.add_string delta_entries
        (Printf.sprintf
           "    {\"every\": %d, \"time_s\": %.6f, \"delta_records\": %d, \
            \"overhead_pct\": %.2f}"
           every t recs pct))
    [ 1; 4; 16 ];
  (* -- resume-vs-cold ------------------------------------------------- *)
  section "E15  resume-vs-cold (fuel-truncated sweep, then resume)";
  Tgd_chase.Entailment.clear_memos ();
  Tgd_chase.Chase.clear_memo ();
  let full_report, cold_s =
    time_it (fun () -> Budget.value (Rewrite.fg_to_g ~config:base_config sigma))
  in
  let log_cfg = Rewrite.log_config ~dir ~name:"e15-resume" () in
  (* pick a fuel that truncates partway through the sweep; the truncated
     run checkpoints through the incremental delta chain *)
  let truncated_run fuel =
    Tgd_chase.Entailment.clear_memos ();
    Tgd_chase.Chase.clear_memo ();
    let config =
      { base_config with
        Rewrite.budget = Budget.make ~fuel ();
        checkpoint = Some (Rewrite.Incremental (Rewrite.start_log log_cfg));
        checkpoint_every = 1
      }
    in
    time_it (fun () -> Rewrite.fg_to_g ~config sigma)
  in
  let rec find_fuel = function
    | [] -> None
    | fuel :: rest -> (
      Delta_log.remove log_cfg;
      match truncated_run fuel with
      | Budget.Truncated _, dt -> Some (fuel, dt)
      | Budget.Complete _, _ -> find_fuel rest)
  in
  let resume_entry =
    match find_fuel [ 50; 200; 800; 3_200; 12_800 ] with
    | None ->
      row "sweep too small to truncate: resume not measured@.";
      Printf.sprintf
        "  \"resume\": {\"cold_s\": %.6f, \"measured\": false}" cold_s
    | Some (fuel, truncated_s) ->
      let resumed =
        match Rewrite.load_log log_cfg with
        | Ok (Some r) -> r.Rewrite.rz_checkpoint
        | _ -> failwith "E15: truncated sweep left no loadable checkpoint"
      in
      Tgd_chase.Entailment.clear_memos ();
      Tgd_chase.Chase.clear_memo ();
      let resumed_report, resume_s =
        time_it (fun () ->
            Budget.value
              (Rewrite.fg_to_g ~config:base_config ~resume:resumed sigma))
      in
      Delta_log.remove log_cfg;
      let agree = resumed_report.Rewrite.outcome = full_report.Rewrite.outcome in
      row "%-22s %12s %12s %12s %8s@." "" "cold(s)" "trunc(s)" "resume(s)"
        "agree";
      row "%-22s %12.4f %12.4f %12.4f %8b@."
        (Printf.sprintf "fuel %d" fuel)
        cold_s truncated_s resume_s agree;
      Printf.sprintf
        "  \"resume\": {\"measured\": true, \"fuel\": %d, \"cold_s\": %.6f, \
         \"truncated_s\": %.6f, \"resume_s\": %.6f, \
         \"resumed_equals_cold\": %b}"
        fuel cold_s truncated_s resume_s agree
  in
  (* -- request completion under injected faults ----------------------- *)
  section "E15  serve: requests completed under faults, retries 0 vs 3";
  let module Server = Tgd_serve.Server in
  let module Json = Tgd_serve.Json in
  let requests = 200 in
  let request i =
    Result.get_ok
      (Json.of_string
         (Printf.sprintf
            "{\"id\": %d, \"op\": \"entail\", \
             \"tgds\": \"E(x,y) -> S(y).\", \
             \"goal\": \"E(x,y), E(y,z) -> S(z).\"}"
            i))
  in
  let serve_entries = Buffer.create 1024 in
  let first = ref true in
  row "%-10s %-8s %10s %10s %12s %10s %10s@." "raise_p" "retries" "ok"
    "fault" "time(s)" "p50(ms)" "p99(ms)";
  List.iter
    (fun (raise_p, retries) ->
      let config =
        { Server.default_config with
          Server.retries;
          backoff_base_s = 1e-4
        }
      in
      let ok = ref 0 and fault = ref 0 in
      let lat = Array.make requests 0. in
      let _, dt =
        time_it (fun () ->
            Chaos.with_config
              { Chaos.default_config with Chaos.seed = 17; raise_p }
              (fun () ->
                for i = 1 to requests do
                  let t0 = Unix.gettimeofday () in
                  let resp = Server.handle config (request i) in
                  lat.(i - 1) <- Unix.gettimeofday () -. t0;
                  match Json.member "ok" resp with
                  | Some (Json.Bool true) -> incr ok
                  | _ -> incr fault
                done))
      in
      let p50 = 1000. *. Tgd_net.Loadgen.percentile lat 50.
      and p99 = 1000. *. Tgd_net.Loadgen.percentile lat 99. in
      row "%-10.2f %-8d %10d %10d %12.4f %10.3f %10.3f@." raise_p retries
        !ok !fault dt p50 p99;
      if not !first then Buffer.add_string serve_entries ",\n";
      first := false;
      Buffer.add_string serve_entries
        (Printf.sprintf
           "    {\"raise_p\": %.2f, \"retries\": %d, \"requests\": %d, \
            \"ok\": %d, \"fault\": %d, \"time_s\": %.6f, \
            \"p50_ms\": %.4f, \"p99_ms\": %.4f}"
           raise_p retries requests !ok !fault dt p50 p99))
    [ (0.05, 0); (0.05, 3); (0.2, 0); (0.2, 3) ];
  let oc = open_out "BENCH_recover.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"crash_recovery\",\n  \"repetitions\": %d,\n\
    \  \"checkpoint_overhead\": [\n%s\n  ],\n\
    \  \"delta_overhead\": [\n%s\n  ],\n%s,\n\
    \  \"serve_under_faults\": [\n%s\n  ]\n}\n"
    reps
    (Buffer.contents ov_entries)
    (Buffer.contents delta_entries)
    resume_entry
    (Buffer.contents serve_entries);
  close_out oc;
  row "@.BENCH_recover.json written@."

(* ------------------------------------------------------------------ *)
(* E16: concurrent serving — socket throughput, warm-vs-cold cache,   *)
(* throughput under injected faults.                                  *)
(* ------------------------------------------------------------------ *)

let e16 ~quick () =
  let module Transport = Tgd_net.Transport in
  let module Dispatcher = Tgd_net.Dispatcher in
  let module Loadgen = Tgd_net.Loadgen in
  let module Warm = Tgd_net.Warm in
  let module Chaos = Tgd_engine.Chaos in
  let module Fleet = Tgd_net.Fleet in
  let module Supervisor = Tgd_engine.Supervisor in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tgd_bench_serve_%d.sock" (Unix.getpid ()))
  in
  let addr = Transport.Unix_sock sock in
  let config workers =
    { Transport.default_config with
      Transport.dispatcher =
        { Dispatcher.default_config with Dispatcher.workers };
      max_connections = 128
    }
  in
  let with_server ?(workers = 4) f =
    let t = Transport.start (config workers) addr in
    Fun.protect ~finally:(fun () -> ignore (Transport.stop t)) (fun () -> f t)
  in
  (* -- fleet: process-isolated shards under kills --------------------- *)
  (* This block runs before anything in the bench process spawns a
     domain: OCaml refuses [Unix.fork] forever after the first
     [Domain.spawn], so the forking fleet rows must come first and the
     in-process baseline (which spawns a worker-pool domain) after.
     When the whole suite runs, earlier experiments have already spawned
     domains — probe fork availability and record the skip honestly
     instead of crashing ([bench serve] alone always takes this path). *)
  section "E16  fleet: sharded serving, shard kills, failover";
  let cores = Domain.recommended_domain_count () in
  let can_fork =
    try
      (match Unix.fork () with
      | 0 -> Unix._exit 0
      | pid -> ignore (Unix.waitpid [] pid));
      true
    with Failure _ -> false
  in
  let fleet_conns = 8 and fleet_per_conn = if quick then 15 else 40 in
  let fleet_workload = Loadgen.multi_workload ~ontologies:8 ~distinct:4 () in
  let fleet_rows = Buffer.create 1024 in
  let fleet_row ~mode ~shards ~kills ~respawns (r : Loadgen.result) =
    if Buffer.length fleet_rows > 0 then Buffer.add_string fleet_rows ",\n";
    Buffer.add_string fleet_rows
      (Printf.sprintf
         "    {\"mode\": %S, \"shards\": %d, \"kills\": %S, \
          \"requests\": %d, \"ok\": %d, \"errors\": %d, \"malformed\": %d, \
          \"reconnects\": %d, \"respawns\": %d, \"req_per_s\": %.1f, \
          \"p99_ms\": %.4f}"
         mode shards kills r.Loadgen.requests r.Loadgen.ok r.Loadgen.errors
         r.Loadgen.malformed r.Loadgen.reconnects respawns
         (Loadgen.throughput r)
         (1000. *. Loadgen.percentile r.Loadgen.latencies_s 99.));
    row "%-8s %-10s %8d %8d %10d %11d %9d %10.1f %10.3f@." mode kills
      r.Loadgen.ok r.Loadgen.errors r.Loadgen.malformed r.Loadgen.reconnects
      respawns (Loadgen.throughput r)
      (1000. *. Loadgen.percentile r.Loadgen.latencies_s 99.)
  in
  row "(multi workload: %d ontologies, %d connections x %d requests, \
       %d cores)@." 8 fleet_conns fleet_per_conn cores;
  row "%-8s %-10s %8s %8s %10s %11s %9s %10s %10s@." "mode" "kills" "ok"
    "errors" "malformed" "reconnects" "respawns" "req/s" "p99(ms)";
  if can_fork then begin
    let fleet_sock =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tgd_bench_fleet_%d.sock" (Unix.getpid ()))
    in
    let fleet_addr = Transport.Unix_sock fleet_sock in
    let fleet_config =
      { Fleet.default_config with
        Fleet.shards = 4;
        shard = config 2;
        cache_bytes = Some (32 * 1024 * 1024);
        beat_s = 0.1;
        policy =
          { Supervisor.max_restarts = 1000;
            backoff_base_s = 0.05;
            backoff_cap_s = 0.5;
            wedge_timeout_s = Some 5.0;
            tick_s = 0.05
          };
        retries = 6;
        backoff_base_s = 0.05
      }
    in
    let with_fleet f =
      let t = Fleet.start fleet_config fleet_addr in
      Fun.protect ~finally:(fun () -> ignore (Fleet.stop t)) (fun () -> f t)
    in
    let drive t =
      Loadgen.run ~fault_tolerant:true fleet_addr ~connections:fleet_conns
        ~requests:fleet_per_conn fleet_workload
      |> fun r -> (r, Fleet.respawn_count t)
    in
    (* a respawn can land just after the last response; give the monitor
       a moment so the row records the recovery it actually performed *)
    let await_respawn t =
      let deadline = Unix.gettimeofday () +. 10. in
      while Fleet.respawn_count t = 0 && Unix.gettimeofday () < deadline do
        Thread.delay 0.05
      done
    in
    let r, respawns = with_fleet drive in
    fleet_row ~mode:"fleet" ~shards:4 ~kills:"none" ~respawns r;
    let r, respawns =
      with_fleet (fun t ->
          let killer =
            Thread.create
              (fun () ->
                Thread.delay 0.3;
                ignore (Fleet.kill_shard t 0))
              ()
          in
          let r, _ = drive t in
          Thread.join killer;
          await_respawn t;
          (r, Fleet.respawn_count t))
    in
    fleet_row ~mode:"fleet" ~shards:4 ~kills:"one" ~respawns r;
    let r, respawns =
      with_fleet (fun t ->
          Chaos.with_config
            { Chaos.default_config with Chaos.seed = 17; kill_p = 0.04 }
            (fun () ->
              let r, _ = drive t in
              await_respawn t;
              (r, Fleet.respawn_count t)))
    in
    fleet_row ~mode:"fleet" ~shards:4 ~kills:"periodic" ~respawns r
  end
  else
    row "(fleet rows skipped: fork unavailable after domain spawn — run \
         [bench serve] alone)@.";
  Warm.configure ~cache_bytes:(Some (64 * 1024 * 1024));
  (* the in-process comparison point: same workload and connection
     count, one process, a 4-worker domain pool.  On a single-core
     machine the 4-shard fleet cannot beat this — the JSON carries
     [cores] so the multi-core CI gate knows when to enforce
     fleet >= single. *)
  Warm.reset ();
  let single =
    with_server ~workers:4 (fun _ ->
        Loadgen.run ~fault_tolerant:true addr ~connections:fleet_conns
          ~requests:fleet_per_conn fleet_workload)
  in
  fleet_row ~mode:"single" ~shards:1 ~kills:"none" ~respawns:0 single;
  section "E16  serving: socket throughput, warm-vs-cold cache, chaos";
  (* -- sustained throughput by connection count ----------------------- *)
  let per_conn = if quick then 20 else 50 in
  let ks = [ 1; 4; 16; 64 ] in
  row "(entail workload, %d requests per connection, 4 workers)@." per_conn;
  row "%-6s %10s %10s %10s %12s %10s %10s@." "K" "ok" "errors" "malformed"
    "req/s" "p50(ms)" "p99(ms)";
  let tp_entries = Buffer.create 1024 in
  List.iteri
    (fun idx k ->
      Warm.reset ();
      let r =
        with_server (fun _ ->
            Loadgen.run addr ~connections:k ~requests:per_conn
              (Loadgen.entail_workload ~distinct:8 ()))
      in
      row "%-6d %10d %10d %10d %12.1f %10.3f %10.3f@." k r.Loadgen.ok
        r.Loadgen.errors r.Loadgen.malformed (Loadgen.throughput r)
        (1000. *. Loadgen.percentile r.Loadgen.latencies_s 50.)
        (1000. *. Loadgen.percentile r.Loadgen.latencies_s 99.);
      if idx > 0 then Buffer.add_string tp_entries ",\n";
      Buffer.add_string tp_entries
        (Printf.sprintf
           "    {\"connections\": %d, \"requests\": %d, \"ok\": %d, \
            \"errors\": %d, \"malformed\": %d, \"req_per_s\": %.1f, \
            \"p50_ms\": %.4f, \"p99_ms\": %.4f}"
           k r.Loadgen.requests r.Loadgen.ok r.Loadgen.errors
           r.Loadgen.malformed (Loadgen.throughput r)
           (1000. *. Loadgen.percentile r.Loadgen.latencies_s 50.)
           (1000. *. Loadgen.percentile r.Loadgen.latencies_s 99.)))
    ks;
  (* -- warm vs cold cache --------------------------------------------- *)
  section "E16  warm-vs-cold: same requests, empty vs populated caches";
  let wc_conns = 4 and wc_per_conn = if quick then 25 else 60 in
  let workload = Loadgen.entail_workload ~distinct:12 () in
  let cold, warm =
    with_server (fun _ ->
        Warm.reset ();
        let cold =
          Loadgen.run addr ~connections:wc_conns ~requests:wc_per_conn
            workload
        in
        let warm =
          Loadgen.run addr ~connections:wc_conns ~requests:wc_per_conn
            workload
        in
        (cold, warm))
  in
  let cache = Warm.counters () in
  row "%-6s %12s %12s@." "" "cold req/s" "warm req/s";
  row "%-6s %12.1f %12.1f   (cache: %d hits / %d misses)@." ""
    (Loadgen.throughput cold) (Loadgen.throughput warm)
    cache.Tgd_engine.Memo.hits cache.Tgd_engine.Memo.misses;
  let wc_entry =
    Printf.sprintf
      "  \"warm_vs_cold\": {\"connections\": %d, \"requests\": %d, \
       \"cold_req_per_s\": %.1f, \"warm_req_per_s\": %.1f, \
       \"cold_p50_ms\": %.4f, \"warm_p50_ms\": %.4f, \
       \"cache_hits\": %d, \"cache_misses\": %d, \"evictions\": %d}"
      wc_conns cold.Loadgen.requests (Loadgen.throughput cold)
      (Loadgen.throughput warm)
      (1000. *. Loadgen.percentile cold.Loadgen.latencies_s 50.)
      (1000. *. Loadgen.percentile warm.Loadgen.latencies_s 50.)
      cache.Tgd_engine.Memo.hits cache.Tgd_engine.Memo.misses
      cache.Tgd_engine.Memo.evicted
  in
  (* -- throughput under injected faults ------------------------------- *)
  section "E16  chaos: throughput as fault probability rises";
  let chaos_conns = 8 and chaos_per_conn = if quick then 15 else 30 in
  row "%-10s %10s %10s %10s %12s@." "raise_p" "ok" "errors" "malformed"
    "req/s";
  let chaos_entries = Buffer.create 1024 in
  List.iteri
    (fun idx raise_p ->
      Warm.reset ();
      (* a fresh server per row: sustained faults can trip the pool's
         circuit breaker, and a tripped breaker must not bleed into the
         next row's numbers *)
      let r =
        with_server (fun _ ->
            Chaos.with_config
              { Chaos.default_config with Chaos.seed = 17; raise_p }
              (fun () ->
                Loadgen.run addr ~connections:chaos_conns
                  ~requests:chaos_per_conn
                  (Loadgen.entail_workload ~distinct:8 ())))
      in
      row "%-10.2f %10d %10d %10d %12.1f@." raise_p r.Loadgen.ok
        r.Loadgen.errors r.Loadgen.malformed (Loadgen.throughput r);
      if idx > 0 then Buffer.add_string chaos_entries ",\n";
      Buffer.add_string chaos_entries
        (Printf.sprintf
           "    {\"raise_p\": %.2f, \"connections\": %d, \"requests\": %d, \
            \"ok\": %d, \"errors\": %d, \"malformed\": %d, \
            \"req_per_s\": %.1f}"
           raise_p chaos_conns r.Loadgen.requests r.Loadgen.ok
           r.Loadgen.errors r.Loadgen.malformed (Loadgen.throughput r)))
    [ 0.0; 0.05; 0.2 ];
  Warm.configure ~cache_bytes:None;
  (try Unix.unlink sock with Unix.Unix_error (_, _, _) -> ());
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"serve\",\n\
    \  \"fleet\": {\"cores\": %d, \"fork_available\": %b, \"rows\": [\n\
     %s\n  ]},\n\
    \  \"throughput\": [\n%s\n  ],\n%s,\n\
    \  \"chaos\": [\n%s\n  ]\n}\n"
    cores can_fork (Buffer.contents fleet_rows) (Buffer.contents tp_entries)
    wc_entry
    (Buffer.contents chaos_entries);
  close_out oc;
  row "@.BENCH_serve.json written@."

let () =
  let has s = Array.exists (String.equal s) Sys.argv in
  let quick = has "quick" in
  let reps = if quick then 3 else 5 in
  
  Fmt.pr "Reproduction harness — Console, Kolaitis, Pieris: Model-theoretic@.";
  Fmt.pr "Characterizations of Rule-based Ontologies (PODS 2021)@.";
  if has "engine" || has "parallel" || has "robust" || has "analysis"
     || has "recover" || has "serve"
  then begin
    (* just the requested JSON-emitting comparisons *)
    if has "engine" then e11 ~reps ();
    if has "parallel" then e12 ~reps ~quick ();
    if has "robust" then e13 ~reps ();
    if has "analysis" then e14 ~reps ();
    if has "recover" then e15 ~reps ();
    if has "serve" then e16 ~quick ();
    Fmt.pr "@.Done.@."
  end
  else begin
    e1 ();
    e2 ();
    e3 ();
    e4_e5 ();
    e6 ();
    e6_scaling ();
    e7 ();
    e8 ();
    e9 ();
    e10 ();
    e11 ~reps ();
    e12 ~reps ~quick ();
    e13 ~reps ();
    run_benchmarks ();
    Fmt.pr "@.Done.@."
  end
