(* tgdtool — command-line front end for the tgd-ontology toolkit.

   Subcommands:
     classify    classify the tgds of a file into the paper's classes
     chase       chase a database file with an ontology file
                 (--explain FACT prints a derivation tree)
     entails     decide Σ ⊨ σ by freezing + chase
     rewrite     run Algorithm 1 (g2l) or Algorithm 2 (fg2g)
     properties  bounded checks of the model-theoretic properties
     synthesize  recover a TGD_{n,m} axiomatization from a model oracle file
     count       print the Section 9.2 candidate-space bounds
     diagnose    full class-lattice + property report for a tgd set
     theory      chase a database with a mixed theory (tgds+egds+denials)
     datalog     semi-naive saturation for full tgds
     core        core (minimal retract) of an instance file
     acyclic     GYO α-acyclicity of each rule body
     refute      entailment with finite-countermodel search
     analyze     static analysis: termination certificates, dependency
                 graph, rule lints; exit 0 clean / 1 warnings / 2 errors *)

open Tgd_syntax
open Tgd_core
open Cmdliner (* last: Cmdliner.Term must shadow Tgd_syntax.Term *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_tgds_file path =
  match Tgd_parse.Parse.tgds (read_file path) with
  | Ok tgds -> tgds
  | Error e -> Fmt.failwith "%s: %a" path Tgd_parse.Parse.pp_error e

let parse_program_file ?schema path =
  match Tgd_parse.Parse.program ?schema (read_file path) with
  | Ok p -> p
  | Error e -> Fmt.failwith "%s: %a" path Tgd_parse.Parse.pp_error e

(* ---- common arguments ---- *)

let ontology_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"ONTOLOGY" ~doc:"File containing tgds (Datalog± syntax).")

let budget_arg =
  Arg.(
    value & opt int 64
    & info [ "rounds" ] ~docv:"N" ~doc:"Chase budget: maximum rounds.")

let max_facts_arg =
  Arg.(
    value & opt int 20_000
    & info [ "max-facts" ] ~docv:"N" ~doc:"Chase budget: maximum facts.")

let timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Wall-clock deadline in seconds.  On expiry the run stops \
              cooperatively, prints the partial result computed so far, \
              and exits with code 3.")

let fuel_arg =
  Arg.(
    value & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Total trigger-firing budget for the whole run (shared across \
              all chases it performs).  Exhaustion truncates like \
              $(b,--timeout): partial result, exit code 3.")

let budget_of rounds max_facts timeout fuel =
  Tgd_engine.Budget.make ~rounds ~facts:max_facts ?timeout_s:timeout ?fuel ()

(* Exit code 3 — distinct from 1 (negative verdict) and 2 (undecided) — is
   reserved for budget truncation across all subcommands; 4 for a durable
   checkpoint that exists but fails validation. *)
let truncated_exit =
  Cmd.Exit.info 3
    ~doc:"the run was truncated by its resource budget ($(b,--timeout), \
          $(b,--fuel), $(b,--rounds), $(b,--max-facts), or an injected \
          fault); the partial results printed are a sound prefix."

let rejected_exit =
  Cmd.Exit.info 4
    ~doc:"a durable checkpoint exists under $(b,--checkpoint-dir) but no \
          generation yields a verifiable base (bad magic/header, checksum \
          mismatch — on every retained generation).  Nothing was resumed \
          or overwritten; run $(b,tgdtool checkpoint inspect) to see the \
          damage, or delete the chain's files to start fresh.  Mere \
          delta-chain damage never exits 4: the run resumes from the last \
          verifiable prefix with a warning."

let exits = truncated_exit :: rejected_exit :: Cmd.Exit.defaults

let checkpoint_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:"Persist progress under $(docv) as an incremental delta chain \
              (full base + per-barrier delta records, compacted \
              generationally) and resume from it on restart (a notice goes \
              to stderr; stdout stays byte-comparable with an \
              uninterrupted run).  The chain is removed when the run \
              completes.  A torn final record is dropped silently; \
              mid-chain corruption resumes from the last verifiable prefix \
              with a warning; a chain with no verifiable base aborts with \
              exit code 4 instead of silently restarting.")

let checkpoint_every_arg =
  Arg.(
    value & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint cadence: committed screening batches between delta \
              records for $(b,rewrite) (default 1), committed chase rounds \
              per delta record for $(b,chase) (default 8).")

let checkpoint_keep_arg =
  Arg.(
    value & opt int 2
    & info [ "checkpoint-keep" ] ~docv:"N"
        ~doc:"Checkpoint generations retained after compaction (default 2); \
              older generations are deleted atomically when the chain is \
              folded into a fresh base.")

let checkpoint_fsync_arg =
  Arg.(
    value & flag
    & info [ "checkpoint-fsync" ]
        ~doc:"fsync the checkpoint files at every barrier (base writes, \
              delta appends, pointer switches).  Off by default: surviving \
              kill -9 needs no fsync, only power loss does.")

(* Shared load-or-die for incremental chains.  [Ok None] starts fresh,
   [Ok (Some r)] announces the resume on stderr (plus one warning line per
   degradation — a mid-chain corruption resumes from the verified prefix
   instead of failing), [Error] prints every diagnosis and exits 4 —
   a chain with no verifiable base must never silently masquerade as a
   fresh start. *)
let load_delta_log ~path ~warnings_of load cfg =
  match load cfg with
  | Ok None -> None
  | Ok (Some r) ->
    Fmt.epr "resuming from checkpoint %s@." path;
    List.iter (fun w -> Fmt.epr "checkpoint warning: %s@." w) (warnings_of r);
    Some r
  | Error messages ->
    List.iter (fun m -> Fmt.epr "checkpoint rejected: %s@." m) messages;
    exit 4

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print engine counters (index probes, triggers, memo hit rate).")

let naive_arg =
  Arg.(
    value & flag
    & info [ "naive-chase" ]
        ~doc:"Use the snapshot-rescan reference chase instead of the \
              semi-naive engine.")

let no_analyze_arg =
  Arg.(
    value & flag
    & info [ "no-analyze" ]
        ~doc:"Disable the static-analysis front-end: no               termination-certificate promotion of round-truncated chases               and no candidate prefiltering.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for parallel screening/matching; 1 (the \
              default) stays on the sequential path.  Results are \
              independent of N.")

let chunk_arg =
  Arg.(
    value & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:"Items per pool claim for parallel screening/matching.  By \
              default the chunk is sized from the analysis strategy: \
              certified-terminating sets pack many cheap items per claim, \
              uncertified sets get small chunks for load balance.  Results \
              are independent of N.")

(* ---- classify ---- *)

let classify_cmd =
  let run path =
    let tgds = parse_tgds_file path in
    List.iter
      (fun t ->
        Fmt.pr "%a@.  classes: %a;  n = %d, m = %d@." Tgd.pp t
          Fmt.(list ~sep:(any ", ") Tgd_class.pp_cls)
          (Tgd_class.classify t) (Tgd.n_universal t) (Tgd.m_existential t))
      tgds;
    let n, m = Rewrite.class_bounds tgds in
    Fmt.pr "@.Σ ∈ TGD_{%d,%d}; termination certificate: %a@." n m
      Fmt.(option ~none:(any "none") Tgd_analysis.Termination.pp_cert)
      (Tgd_analysis.Termination.certificate tgds)
  in
  Cmd.v (Cmd.info "classify" ~doc:"Classify tgds into full/linear/guarded/frontier-guarded.")
    Term.(const run $ ontology_arg)

(* ---- chase ---- *)

let chase_cmd =
  let db_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DATABASE" ~doc:"File containing facts.")
  in
  let oblivious_arg =
    Arg.(value & flag & info [ "oblivious" ] ~doc:"Use the oblivious chase.")
  in
  let explain_arg =
    Arg.(
      value & opt (some string) None
      & info [ "explain" ] ~docv:"FACT"
          ~doc:"Print the derivation tree of a fact, e.g. \"T(a,c)\".")
  in
  let run path db_path rounds max_facts timeout fuel oblivious explain stats
      naive jobs chunk no_analyze checkpoint_dir checkpoint_every
      checkpoint_keep checkpoint_fsync =
    let sigma = parse_tgds_file path in
    let schema = Rewrite.schema_of sigma in
    let p = parse_program_file path in
    let schema =
      Schema.union schema (parse_program_file db_path).Tgd_parse.Parse.schema
    in
    ignore p;
    let db =
      Tgd_instance.Instance.of_facts schema
        (parse_program_file ~schema db_path).Tgd_parse.Parse.facts
    in
    let budget = budget_of rounds max_facts timeout fuel in
    match explain with
    | None ->
      let r =
        match checkpoint_dir with
        | Some dir ->
          if oblivious || naive then
            Fmt.failwith
              "--checkpoint-dir supports the default restricted engine \
               chase only";
          let log =
            Tgd_chase.Chase.log_config ~keep:checkpoint_keep
              ~fsync:checkpoint_fsync ~dir ~name:"chase" ()
          in
          let resume =
            load_delta_log
              ~path:(Tgd_engine.Delta_log.current_path log)
              ~warnings_of:(fun r -> r.Tgd_chase.Chase.rz_warnings)
              Tgd_chase.Chase.load_log log
          in
          Tgd_chase.Chase.restricted_resumable ~budget ~jobs ?chunk
            ?every:checkpoint_every ~log ?resume sigma db
        | None ->
          let chase =
            if oblivious then Tgd_chase.Chase.oblivious ?on_fire:None
            else Tgd_chase.Chase.restricted ?on_fire:None
          in
          chase ~naive ~budget ~jobs ?chunk ~analyze:(not no_analyze) sigma db
      in
      Fmt.pr "%a@.%a@." Tgd_chase.Chase.pp_result r Tgd_instance.Instance.pp
        r.Tgd_chase.Chase.instance;
      if stats then
        Fmt.pr "%a@." Tgd_engine.Stats.pp r.Tgd_chase.Chase.stats;
      (match r.Tgd_chase.Chase.outcome with
      | Tgd_chase.Chase.Truncated reason ->
        Fmt.pr
          "truncated (%a): kept %d facts from %d completed rounds, %d \
           firings@."
          Tgd_engine.Budget.pp_exhaustion reason
          (Tgd_instance.Instance.fact_count r.Tgd_chase.Chase.instance)
          r.Tgd_chase.Chase.rounds r.Tgd_chase.Chase.fired;
        exit 3
      | Tgd_chase.Chase.Terminated -> ())
    | Some fact_src ->
      let fact =
        match
          (Tgd_parse.Parse.program_exn ~schema (fact_src ^ ".")).Tgd_parse.Parse.facts
        with
        | [ f ] -> f
        | _ -> Fmt.failwith "--explain expects exactly one fact"
      in
      let r, log = Tgd_chase.Provenance.restricted ~budget sigma db in
      ignore r;
      (match Tgd_chase.Provenance.explain log fact with
      | Some tree -> Fmt.pr "%a@." Tgd_chase.Provenance.pp_tree tree
      | None ->
        Fmt.pr "%a is not derivable@." Tgd_syntax.Fact.pp fact;
        exit 1)
  in
  Cmd.v (Cmd.info "chase" ~exits ~doc:"Chase a database with a tgd ontology.")
    Term.(
      const run $ ontology_arg $ db_arg $ budget_arg $ max_facts_arg
      $ timeout_arg $ fuel_arg $ oblivious_arg $ explain_arg $ stats_arg
      $ naive_arg $ jobs_arg $ chunk_arg $ no_analyze_arg $ checkpoint_dir_arg
      $ checkpoint_every_arg $ checkpoint_keep_arg $ checkpoint_fsync_arg)

(* ---- entails ---- *)

let entails_cmd =
  let goal_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TGD" ~doc:"Goal tgd, e.g. \"R(x,y) -> T(x).\"")
  in
  let run path goal rounds max_facts timeout fuel =
    let sigma = parse_tgds_file path in
    let goal = Tgd_parse.Parse.tgd_exn goal in
    let answer =
      Tgd_chase.Entailment.entails
        ~budget:(budget_of rounds max_facts timeout fuel)
        sigma goal
    in
    Fmt.pr "%a@." Tgd_chase.Entailment.pp_answer answer;
    if answer = Tgd_chase.Entailment.Unknown then exit 2
  in
  Cmd.v (Cmd.info "entails" ~doc:"Decide Σ ⊨ σ via freezing and the chase.")
    Term.(
      const run $ ontology_arg $ goal_arg $ budget_arg $ max_facts_arg
      $ timeout_arg $ fuel_arg)

(* ---- rewrite ---- *)

let rewrite_cmd =
  let direction_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("g2l", `G2l); ("fg2g", `Fg2g) ])) None
      & info [] ~docv:"DIRECTION" ~doc:"g2l (Algorithm 1) or fg2g (Algorithm 2).")
  in
  let file_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"ONTOLOGY" ~doc:"Input set of tgds.")
  in
  let body_cap =
    Arg.(value & opt int 2 & info [ "max-body-atoms" ] ~docv:"N" ~doc:"Candidate body atom cap.")
  in
  let head_cap =
    Arg.(value & opt int 2 & info [ "max-head-atoms" ] ~docv:"N" ~doc:"Candidate head atom cap.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the rewriting to a file.")
  in
  let run direction path body head rounds max_facts timeout fuel out stats
      naive jobs chunk no_analyze checkpoint_dir checkpoint_every
      checkpoint_keep checkpoint_fsync =
    let sigma = parse_tgds_file path in
    let log =
      Option.map
        (fun dir ->
          Rewrite.log_config ~keep:checkpoint_keep ~fsync:checkpoint_fsync
            ~dir
            ~name:
              (match direction with
              | `G2l -> "rewrite-g2l"
              | `Fg2g -> "rewrite-fg2g")
            ())
        checkpoint_dir
    in
    let resumed =
      Option.bind log (fun cfg ->
          load_delta_log
            ~path:(Tgd_engine.Delta_log.current_path cfg)
            ~warnings_of:(fun r -> r.Rewrite.rz_warnings)
            Rewrite.load_log cfg)
    in
    let sink =
      Option.map
        (fun cfg ->
          Rewrite.Incremental
            (match resumed with
            | Some r -> Rewrite.resume_log cfg r
            | None -> Rewrite.start_log cfg))
        log
    in
    let resume = Option.map (fun r -> r.Rewrite.rz_checkpoint) resumed in
    let config =
      Rewrite.
        { caps =
            Candidates.
              { max_body_atoms = body; max_head_atoms = head; keep_tautologies = false };
          budget = budget_of rounds max_facts timeout fuel;
          minimize = true;
          naive;
          memo = not naive;
          jobs;
          chunk;
          analyze = not no_analyze;
          checkpoint = sink;
          checkpoint_every = Option.value checkpoint_every ~default:1
        }
    in
    let outcome =
      match direction with
      | `G2l -> Rewrite.g_to_l ~config ?resume sigma
      | `Fg2g -> Rewrite.fg_to_g ~config ?resume sigma
    in
    let report = Tgd_engine.Budget.value outcome in
    Fmt.pr "n = %d, m = %d; %d candidates enumerated, %d entailed, %d \
            prefiltered@."
      report.Rewrite.n report.Rewrite.m report.Rewrite.candidates_enumerated
      report.Rewrite.candidates_entailed report.Rewrite.candidates_skipped;
    Fmt.pr "%a@." Rewrite.pp_outcome report.Rewrite.outcome;
    if stats then Fmt.pr "%a@." Tgd_engine.Stats.pp report.Rewrite.stats;
    match outcome with
    | Tgd_engine.Budget.Truncated { reason; partial; _ } ->
      (match partial.Rewrite.checkpoint with
      | Some cp ->
        Fmt.pr
          "truncated (%a): %d candidates screened before the trip; rerun \
           with a larger budget to resume from there@."
          Tgd_engine.Budget.pp_exhaustion reason cp.Rewrite.cursor
      | None ->
        Fmt.pr "truncated (%a)@." Tgd_engine.Budget.pp_exhaustion reason);
      exit 3
    | Tgd_engine.Budget.Complete _ -> (
      match report.Rewrite.outcome with
      | Rewrite.Rewritable sigma' ->
        Option.iter
          (fun path ->
            Tgd_parse.Print.to_file path (Tgd_parse.Print.tgds sigma' ^ "\n");
            Fmt.pr "written to %s@." path)
          out
      | Rewrite.Not_rewritable _ -> exit 1
      | Rewrite.Unknown _ -> exit 2)
  in
  Cmd.v
    (Cmd.info "rewrite" ~exits
       ~doc:"Rewrite guarded tgds into linear (g2l) or frontier-guarded into guarded (fg2g).")
    Term.(
      const run $ direction_arg $ file_arg $ body_cap $ head_cap $ budget_arg
      $ max_facts_arg $ timeout_arg $ fuel_arg $ out_arg $ stats_arg
      $ naive_arg $ jobs_arg $ chunk_arg $ no_analyze_arg $ checkpoint_dir_arg
      $ checkpoint_every_arg $ checkpoint_keep_arg $ checkpoint_fsync_arg)

(* ---- properties ---- *)

let properties_cmd =
  let dom_arg =
    Arg.(value & opt int 2 & info [ "dom" ] ~docv:"K" ~doc:"Domain bound for the checks.")
  in
  let run path dom =
    let sigma = parse_tgds_file path in
    let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
    let show : 'a. 'a Properties.verdict -> string = function
      | Properties.Holds -> "holds"
      | Properties.Fails _ -> "FAILS"
      | Properties.Inconclusive why -> "inconclusive: " ^ why
    in
    Fmt.pr "criticality (k ≤ %d):        %s@." dom (show (Properties.critical_up_to o dom));
    Fmt.pr "closed under ⊗ (dom ≤ %d):    %s@." dom
      (show (Properties.closed_under_products o ~dom_size:dom));
    Fmt.pr "closed under ∩ (dom ≤ %d):    %s@." dom
      (show (Properties.closed_under_intersections o ~dom_size:dom));
    Fmt.pr "closed under ∪ (dom ≤ %d):    %s@." dom
      (show (Properties.closed_under_unions o ~dom_size:dom));
    Fmt.pr "domain independent:          %s@."
      (show (Properties.domain_independent o ~dom_size:dom));
    Fmt.pr "closed under non-obl. dupl.: %s@."
      (show (Properties.closed_under_non_oblivious_dupext o ~dom_size:dom))
  in
  Cmd.v
    (Cmd.info "properties"
       ~doc:"Check the paper's model-theoretic properties on bounded universes.")
    Term.(const run $ ontology_arg $ dom_arg)

(* ---- synthesize ---- *)

let synthesize_cmd =
  let n_arg = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Universal variable bound.") in
  let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Existential variable bound.") in
  let dom_arg = Arg.(value & opt int 2 & info [ "dom" ] ~doc:"Verification domain bound.") in
  let run path n m dom =
    (* the file's tgds define the oracle; synthesis then recovers an
       equivalent axiomatization from membership alone *)
    let sigma = parse_tgds_file path in
    let schema = Rewrite.schema_of sigma in
    let o =
      Ontology.oracle ~name:"file oracle" schema (fun i ->
          Tgd_instance.Satisfaction.tgds i sigma)
    in
    let synth =
      Tgd_engine.Budget.value (Characterize.synthesize ~minimize:true o ~n ~m)
    in
    Fmt.pr "synthesized %d tgds:@." (List.length synth);
    List.iter (fun t -> Fmt.pr "  %a@." Tgd.pp t) synth;
    match Characterize.verify_axiomatization o synth ~dom_size:dom with
    | None -> Fmt.pr "verified on all instances with ≤ %d elements@." dom
    | Some cex ->
      Fmt.pr "DISAGREES on %a@." Tgd_instance.Instance.pp cex;
      exit 1
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Recover a TGD_{n,m} axiomatization from the ontology's membership oracle (Theorem 4.1).")
    Term.(const run $ ontology_arg $ n_arg $ m_arg $ dom_arg)

(* ---- count ---- *)

let count_cmd =
  let n_arg = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Universal variable bound.") in
  let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Existential variable bound.") in
  let run path n m =
    let sigma = parse_tgds_file path in
    let schema = Rewrite.schema_of sigma in
    Fmt.pr "schema: %a (|S| = %d, ar(S) = %d)@." Schema.pp schema
      (Schema.size schema) (Schema.max_arity schema);
    Fmt.pr "linear bodies  ≤ %a@." Bigint.pp (Counting.linear_bodies_bound schema ~n);
    Fmt.pr "guarded bodies ≤ %a@." Bigint.pp (Counting.guarded_bodies_bound schema ~n);
    Fmt.pr "heads          ≤ %a@." Bigint.pp (Counting.heads_bound schema ~n ~m);
    Fmt.pr "LTGD_{%d,%d} candidates ≤ %a@." n m Bigint.pp
      (Counting.linear_candidates_bound schema ~n ~m);
    Fmt.pr "GTGD_{%d,%d} candidates ≤ %a@." n m Bigint.pp
      (Counting.guarded_candidates_bound schema ~n ~m);
    Fmt.pr "per-tgd size   ≤ %a@." Bigint.pp (Counting.tgd_size_bound schema ~n ~m)
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Print the Section 9.2 candidate-space bounds for a schema.")
    Term.(const run $ ontology_arg $ n_arg $ m_arg)

(* ---- diagnose ---- *)

let diagnose_cmd =
  let dom_arg =
    Arg.(value & opt int 2 & info [ "dom" ] ~docv:"K" ~doc:"Domain bound for the property profile.")
  in
  let run path dom =
    let sigma = parse_tgds_file path in
    let report = Expressibility.diagnose ~dom_size:dom sigma in
    Fmt.pr "%a@." Expressibility.pp_report report
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Class-lattice membership (syntactic and semantic) and bounded property profile.")
    Term.(const run $ ontology_arg $ dom_arg)

(* ---- theory ---- *)

let theory_cmd =
  let db_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DATABASE" ~doc:"File containing facts.")
  in
  let run path db_path rounds max_facts timeout fuel =
    let prog = parse_program_file path in
    let schema =
      Schema.union prog.Tgd_parse.Parse.schema
        (parse_program_file db_path).Tgd_parse.Parse.schema
    in
    let db =
      Tgd_instance.Instance.of_facts schema
        (parse_program_file ~schema db_path).Tgd_parse.Parse.facts
    in
    let theory =
      Tgd_chase.Theory.
        { tgds = prog.Tgd_parse.Parse.tgds;
          egds = prog.Tgd_parse.Parse.egds;
          denials = prog.Tgd_parse.Parse.denials
        }
    in
    let r =
      Tgd_chase.Theory.chase
        ~budget:(budget_of rounds max_facts timeout fuel)
        theory db
    in
    Fmt.pr "%a (%d tgd firings, %d merges)@." Tgd_chase.Theory.pp_outcome
      r.Tgd_chase.Theory.outcome r.Tgd_chase.Theory.fired r.Tgd_chase.Theory.merges;
    Fmt.pr "%a@." Tgd_instance.Instance.pp r.Tgd_chase.Theory.instance;
    match r.Tgd_chase.Theory.outcome with
    | Tgd_chase.Theory.Model -> ()
    | Tgd_chase.Theory.Failed _ -> exit 1
    | Tgd_chase.Theory.Out_of_budget _ -> exit 3
  in
  Cmd.v
    (Cmd.info "theory" ~exits
       ~doc:"Chase a database with a mixed theory of tgds, egds, and denial constraints.")
    Term.(
      const run $ ontology_arg $ db_arg $ budget_arg $ max_facts_arg
      $ timeout_arg $ fuel_arg)

(* ---- datalog ---- *)

let datalog_cmd =
  let db_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"DATABASE" ~doc:"File containing facts.")
  in
  let max_facts_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-facts" ] ~docv:"N"
          ~doc:"Saturation fact cap (the fixpoint is finite; this guards \
                against misconfiguration).")
  in
  let run path db_path max_facts timeout fuel =
    let sigma = parse_tgds_file path in
    let schema =
      Schema.union (Rewrite.schema_of sigma)
        (parse_program_file db_path).Tgd_parse.Parse.schema
    in
    let db =
      Tgd_instance.Instance.of_facts schema
        (parse_program_file ~schema db_path).Tgd_parse.Parse.facts
    in
    let budget =
      Tgd_engine.Budget.make ~rounds:max_int ~facts:max_facts
        ?timeout_s:timeout ?fuel ()
    in
    match Tgd_chase.Datalog.saturate_with_stats ~budget sigma db with
    | Tgd_engine.Budget.Complete (result, stats) ->
      Fmt.pr "fixpoint in %d rounds, %d facts derived@."
        stats.Tgd_chase.Datalog.rounds stats.Tgd_chase.Datalog.derived;
      Fmt.pr "%a@." Tgd_instance.Instance.pp result
    | Tgd_engine.Budget.Truncated { reason; partial = result, stats; _ } ->
      Fmt.pr "truncated (%a) after %d rounds, %d facts derived@."
        Tgd_engine.Budget.pp_exhaustion reason stats.Tgd_chase.Datalog.rounds
        stats.Tgd_chase.Datalog.derived;
      Fmt.pr "%a@." Tgd_instance.Instance.pp result;
      exit 3
  in
  Cmd.v
    (Cmd.info "datalog" ~exits
       ~doc:"Semi-naive saturation of a database under full tgds.")
    Term.(
      const run $ ontology_arg $ db_arg $ max_facts_arg $ timeout_arg
      $ fuel_arg)

(* ---- core ---- *)

let core_cmd =
  let db_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"INSTANCE" ~doc:"File containing facts.")
  in
  let run db_path =
    let p = parse_program_file db_path in
    let i =
      Tgd_instance.Instance.of_facts p.Tgd_parse.Parse.schema p.Tgd_parse.Parse.facts
    in
    let core = Tgd_instance.Retract.core i in
    Fmt.pr "%d facts -> %d facts@." (Tgd_instance.Instance.fact_count i)
      (Tgd_instance.Instance.fact_count core);
    Fmt.pr "%a@." Tgd_instance.Instance.pp core
  in
  Cmd.v (Cmd.info "core" ~doc:"Compute the core (minimal retract) of an instance.")
    Term.(const run $ db_arg)

(* ---- acyclic ---- *)

let acyclic_cmd =
  let run path =
    let tgds = parse_tgds_file path in
    List.iter
      (fun t ->
        Fmt.pr "%a@.  body α-acyclic: %b@." Tgd.pp t
          (Hypergraph.is_acyclic (Tgd.body t)))
      tgds
  in
  Cmd.v
    (Cmd.info "acyclic" ~doc:"GYO α-acyclicity of each rule body (guarded bodies always pass).")
    Term.(const run $ ontology_arg)

(* ---- refute ---- *)

let refute_cmd =
  let goal_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"TGD" ~doc:"Goal tgd.")
  in
  let extra_arg =
    Arg.(
      value & opt int 1
      & info [ "extra" ] ~docv:"N"
          ~doc:"Fresh elements allowed in countermodels.")
  in
  let run path goal rounds max_facts timeout fuel extra =
    let sigma = parse_tgds_file path in
    let goal = Tgd_parse.Parse.tgd_exn goal in
    let answer =
      Refutation.entails
        ~budget:(budget_of rounds max_facts timeout fuel)
        ~extra sigma goal
    in
    Fmt.pr "%a@." Tgd_chase.Entailment.pp_answer answer;
    (match Refutation.countermodel ~extra sigma goal with
    | Some cm -> Fmt.pr "countermodel: %a@." Tgd_instance.Instance.pp cm
    | None -> ());
    if answer = Tgd_chase.Entailment.Unknown then exit 2
  in
  Cmd.v
    (Cmd.info "refute"
       ~doc:"Decide Σ ⊨ σ with chase + finite-countermodel search.")
    Term.(
      const run $ ontology_arg $ goal_arg $ budget_arg $ max_facts_arg
      $ timeout_arg $ fuel_arg $ extra_arg)

(* ---- analyze ---- *)

let analyze_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as a single JSON object.")
  in
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:"Also run the chase-backed subsumption lint (is each rule \
                entailed by the others?).  Costs one entailment check per \
                rule.")
  in
  let analyze_exits =
    Cmd.Exit.info 1 ~doc:"warning-severity diagnostics were reported."
    :: Cmd.Exit.info 2 ~doc:"error-severity diagnostics were reported."
    :: Cmd.Exit.defaults
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print every termination-lattice notion's verdict with its \
                refutation, not just the strongest certificate.")
  in
  let emit_cert_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-cert" ] ~docv:"FILE"
          ~doc:"Write the proof-carrying termination certificate (tgdcert \
                v1) to $(docv); verify it independently with $(b,tgdtool \
                certcheck).  Fails when the set did not certify.")
  in
  let run path json deep explain emit_cert =
    let prog = parse_program_file path in
    let tgds = prog.Tgd_parse.Parse.tgds in
    let oracle =
      if deep then
        Some
          (fun rest s ->
            Tgd_chase.Entailment.entails rest s = Tgd_chase.Entailment.Proved)
      else None
    in
    let report = Tgd_analysis.Analyze.run ?oracle tgds in
    if json then print_endline (Tgd_analysis.Analyze.to_json report)
    else begin
      Fmt.pr "%a@." Tgd_analysis.Analyze.pp report;
      if explain then Fmt.pr "%a@." Tgd_analysis.Analyze.pp_explain report
    end;
    (match emit_cert with
    | None -> ()
    | Some file -> (
      match Tgd_analysis.Analyze.certificate report with
      | Some cert ->
        Tgd_analysis.Cert.to_file file tgds cert;
        Fmt.epr "certificate written to %s@." file
      | None ->
        Fmt.epr "no certificate to emit: the set did not certify@.";
        exit 2));
    let code = Tgd_analysis.Analyze.exit_code report in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "analyze" ~exits:analyze_exits
       ~doc:"Static analysis of a rule set: predicate dependency graph, \
             the chase-termination lattice (weak/joint/super-weak \
             acyclicity, critical-instance MSA/MFA, stratified \
             composition — with witnesses), and rule lints.  Exit code 0 \
             when clean, 1 with warnings, 2 with errors.")
    Term.(
      const run $ ontology_arg $ json_arg $ deep_arg $ explain_arg
      $ emit_cert_arg)

(* ---- certcheck ---- *)

let certcheck_cmd =
  let cert_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CERT" ~doc:"Certificate file (tgdcert v1).")
  in
  let certcheck_exits =
    Cmd.Exit.info 2
      ~doc:"the certificate was rejected: malformed, bound to a different \
            rule set, or its witness fails verification."
    :: Cmd.Exit.defaults
  in
  let run path cert_path =
    let sigma = parse_tgds_file path in
    let ic = open_in_bin cert_path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Tgd_analysis.Certcheck.verify sigma text with
    | Ok notion ->
      Fmt.pr "certificate verified: %a@." Tgd_analysis.Termination.pp_cert
        notion
    | Error reason ->
      Fmt.epr "certificate rejected: %s@." reason;
      exit 2
  in
  Cmd.v
    (Cmd.info "certcheck" ~exits:certcheck_exits
       ~doc:"Independently verify a proof-carrying termination certificate \
             (written by $(b,tgdtool analyze --emit-cert)) against a rule \
             set.  The checker shares no verification code with the \
             analysis that produced the certificate.")
    Term.(const run $ ontology_arg $ cert_arg)

(* ---- checkpoint ---- *)

let checkpoint_cmd =
  let module D = Tgd_engine.Delta_log in
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"Directory holding delta-checkpoint chains (the value passed \
                as $(b,--checkpoint-dir)).")
  in
  let inspect_exits =
    Cmd.Exit.info 1
      ~doc:"at least one chain carries corruption (a bad base, an \
            unreadable pointer with no intact generation, or a CRC-invalid \
            mid-chain record).  A torn final record — the normal kill -9 \
            signature — does not count."
    :: Cmd.Exit.defaults
  in
  let run dir =
    let names = D.scan ~dir in
    if names = [] then Fmt.pr "no checkpoint chains under %s@." dir
    else begin
      let corrupt = ref false in
      List.iter
        (fun name ->
          let pointer, gens = D.inspect ~dir ~name in
          Fmt.pr "%s:@." name;
          (match pointer with
          | Some (kind, version, g) ->
            Fmt.pr "  current: generation %d (kind %s, version %d)@." g kind
              version
          | None -> Fmt.pr "  current: no readable pointer@.");
          List.iter
            (fun g ->
              Fmt.pr "  generation %d%s@." g.D.g_generation
                (if g.D.g_current then " (current)" else "");
              (match g.D.g_base_status with
              | `Ok ->
                Fmt.pr "    base  %s: %d bytes, crc ok@." g.D.g_base_path
                  g.D.g_base_bytes
              | `Missing ->
                corrupt := true;
                Fmt.pr "    base  %s: MISSING@." g.D.g_base_path
              | `Bad why ->
                corrupt := true;
                Fmt.pr "    base  %s: BAD (%s)@." g.D.g_base_path why);
              Fmt.pr "    log   %s: %d records, %d bytes@." g.D.g_log_path
                (List.length g.D.g_records)
                g.D.g_log_bytes;
              List.iter
                (fun r ->
                  match r.D.r_status with
                  | `Ok ->
                    Fmt.pr "      record %d at %d: %d bytes, crc ok@."
                      r.D.r_index r.D.r_offset r.D.r_bytes
                  | `Torn ->
                    Fmt.pr
                      "      record %d at %d: torn tail (%d bytes, dropped \
                       on resume)@."
                      r.D.r_index r.D.r_offset r.D.r_bytes
                  | `Corrupt why ->
                    corrupt := true;
                    Fmt.pr "      record %d at %d: CORRUPT (%s)@." r.D.r_index
                      r.D.r_offset why)
                g.D.g_records)
            gens)
        names;
      if !corrupt then exit 1
    end
  in
  let inspect_cmd =
    Cmd.v
      (Cmd.info "inspect" ~exits:inspect_exits
         ~doc:"Print every chain under $(i,DIR): base and delta-chain \
               lengths, byte sizes, and per-record CRC status.  Exit 0 when \
               everything verifies (a torn tail is fine), 1 when any record \
               or base is corrupt.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "checkpoint"
       ~doc:"Inspect durable delta-checkpoint chains ($(b,--checkpoint-dir)).")
    [ inspect_cmd ]

(* ---- serve ---- *)

let serve_cmd =
  let retries_arg =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry attempts for a request hit by a transient injected \
                fault before answering with the $(b,fault) error code.")
  in
  let queue_limit_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:"Queued requests beyond which new ones are shed immediately \
                with the $(b,overloaded) error code.")
  in
  let chaos_raise_p_arg =
    Arg.(
      value & opt float 0.
      & info [ "chaos-raise-p" ] ~docv:"P"
          ~doc:"Install fault injection: probability of an injected \
                exception at each instrumented engine site (for robustness \
                testing; see also $(b,--chaos-seed)).")
  in
  let chaos_delay_p_arg =
    Arg.(
      value & opt float 0.
      & info [ "chaos-delay-p" ] ~docv:"P"
          ~doc:"Fault injection: probability of a 1ms delay per site step.")
  in
  let chaos_kill_p_arg =
    Arg.(
      value & opt float 0.
      & info [ "chaos-kill-p" ] ~docv:"P"
          ~doc:"Fault injection for $(b,--shards) fleets: probability per \
                supervisor tick of SIGKILLing a random shard process — the \
                deterministic shard-kill drill behind the fleet CI job.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed for the deterministic fault-injection schedule.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Serve from $(docv) forked shard processes instead of one: \
                each shard runs the full socket serve loop with its own \
                worker domains and warm caches; the parent supervises \
                (heartbeats, respawn with backoff, degraded mode below \
                quorum) and routes requests by ontology digest with \
                transparent failover.  Requires $(b,--socket) or \
                $(b,--tcp).")
  in
  let socket_arg =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) instead of \
                serving stdin/stdout.  Concurrent connections share the \
                warm entailment and chase caches and a pool of \
                $(b,--workers) supervised worker domains.")
  in
  let tcp_arg =
    Arg.(
      value & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on a TCP socket (same concurrent serving mode as \
                $(b,--socket)).")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing requests in socket mode.")
  in
  let max_connections_arg =
    Arg.(
      value & opt int 64
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent connections served; extra connections get one \
                $(b,overloaded) response and are closed.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections idle longer than $(docv).")
  in
  let cache_bytes_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cache-bytes" ] ~docv:"BYTES"
          ~doc:"Ceiling on the shared warm caches (entailment memo + \
                chase-result cache) with LRU eviction; unlimited by \
                default.")
  in
  let max_line_bytes_arg =
    Arg.(
      value
      & opt int Tgd_serve.Json.default_max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"BYTES"
          ~doc:"Request lines longer than $(docv) are answered with the \
                $(b,request_too_large) error code instead of buffered.")
  in
  let drain_grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"On SIGINT/SIGTERM, patience for in-flight connections to \
                finish before they are cut.")
  in
  let run rounds max_facts timeout retries queue_limit chaos_raise_p
      chaos_delay_p chaos_kill_p chaos_seed shards socket tcp workers
      max_connections idle_timeout cache_bytes max_line_bytes drain_grace
      checkpoint_dir checkpoint_every =
    if chaos_raise_p > 0. || chaos_delay_p > 0. || chaos_kill_p > 0. then
      Tgd_engine.Chaos.install
        { Tgd_engine.Chaos.default_config with
          seed = chaos_seed;
          raise_p = chaos_raise_p;
          delay_p = chaos_delay_p;
          kill_p = chaos_kill_p
        };
    let config =
      { Tgd_serve.Server.default_config with
        rounds;
        max_facts;
        timeout_s = timeout;
        retries;
        queue_limit;
        max_line_bytes;
        checkpoint_dir;
        checkpoint_every =
          Option.value checkpoint_every
            ~default:Tgd_serve.Server.default_config.Tgd_serve.Server
                     .checkpoint_every
      }
    in
    let addr =
      match (socket, tcp) with
      | Some _, Some _ ->
        Fmt.epr "tgdtool serve: --socket and --tcp are exclusive@.";
        exit 2
      | Some path, None -> Some (Tgd_net.Transport.Unix_sock path)
      | None, Some hostport -> (
        match String.rindex_opt hostport ':' with
        | Some i -> (
          let host = String.sub hostport 0 i
          and port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          match int_of_string_opt port with
          | Some p -> Some (Tgd_net.Transport.Tcp ((if host = "" then "127.0.0.1" else host), p))
          | None ->
            Fmt.epr "tgdtool serve: --tcp expects HOST:PORT@.";
            exit 2)
        | None ->
          Fmt.epr "tgdtool serve: --tcp expects HOST:PORT@.";
          exit 2)
      | None, None -> None
    in
    match addr with
    | None ->
      if shards > 1 then begin
        Fmt.epr "tgdtool serve: --shards needs --socket or --tcp@.";
        exit 2
      end;
      exit (Tgd_serve.Server.serve ~config stdin stdout)
    | Some addr ->
      let tconfig =
        { Tgd_net.Transport.dispatcher =
            { Tgd_net.Dispatcher.server = config;
              workers;
              admission = Tgd_net.Admission.default_config ~queue_limit
            };
          max_connections;
          idle_timeout_s = idle_timeout;
          drain_grace_s = drain_grace
        }
      in
      if shards > 1 then
        (* the parent is pure supervisor + router: warm caches and worker
           domains live in the forked shards, configured post-fork *)
        exit
          (Tgd_net.Fleet.serve
             { Tgd_net.Fleet.default_config with
               shards;
               shard = tconfig;
               cache_bytes;
               max_connections;
               idle_timeout_s = idle_timeout;
               drain_grace_s = drain_grace;
               retries;
               backoff_base_s = config.Tgd_serve.Server.backoff_base_s
             }
             addr)
      else begin
        Tgd_net.Warm.configure ~cache_bytes;
        exit (Tgd_net.Transport.serve tconfig addr)
      end
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:"Serve classify/chase/entail/rewrite/analyze requests over \
             line-delimited JSON — on stdin/stdout by default, or \
             concurrently on a Unix/TCP socket with $(b,--socket) or \
             $(b,--tcp).  Every accepted request gets exactly one terminal \
             response; transient injected faults are retried with backoff; \
             requests beyond $(b,--queue-limit) (earlier, when predicted \
             expensive by static analysis) are shed with a structured \
             $(b,overloaded) error; SIGINT and SIGTERM drain in-flight \
             work before exiting.  With $(b,--shards N) the socket is \
             served by a supervised fleet of N forked shard processes \
             with failover (see $(b,tgdtool fleet)).")
    Term.(
      const run $ budget_arg $ max_facts_arg $ timeout_arg $ retries_arg
      $ queue_limit_arg $ chaos_raise_p_arg $ chaos_delay_p_arg
      $ chaos_kill_p_arg $ chaos_seed_arg $ shards_arg $ socket_arg
      $ tcp_arg $ workers_arg $ max_connections_arg $ idle_timeout_arg
      $ cache_bytes_arg $ max_line_bytes_arg $ drain_grace_arg
      $ checkpoint_dir_arg $ checkpoint_every_arg)

(* ---- loadgen ---- *)

let loadgen_cmd =
  let socket_arg =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Connect to a Unix-domain socket server at $(docv).")
  in
  let tcp_arg =
    Arg.(
      value & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect to a TCP server.")
  in
  let connections_arg =
    Arg.(
      value & opt int 4
      & info [ "connections" ] ~docv:"K"
          ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 25
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per connection.")
  in
  let op_arg =
    Arg.(
      value & opt string "entail"
      & info [ "op" ] ~docv:"OP"
          ~doc:"Workload: $(b,entail), $(b,classify), $(b,mixed), \
                $(b,rewrite) (g2l sweeps — see $(b,--ontology)), \
                $(b,batch) (chunked multi-request submissions), or \
                $(b,multi) (entailment over $(b,--ontologies) distinct \
                rule sets — spreads across fleet shards).")
  in
  let distinct_arg =
    Arg.(
      value & opt int 8
      & info [ "distinct" ] ~docv:"D"
          ~doc:"Distinct request shapes cycled through (repeats warm the \
                server's caches).")
  in
  let ontology_arg =
    Arg.(
      value & opt (some string) None
      & info [ "ontology" ] ~docv:"FILE"
          ~doc:"For $(b,--op rewrite): the ontology each request screens \
                (e.g. a generated data/gen_*.dlp fixture).  Default: a \
                small built-in layered set.")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"B"
          ~doc:"For $(b,--op batch): sub-requests per submission.")
  in
  let ontologies_arg =
    Arg.(
      value & opt int 8
      & info [ "ontologies" ] ~docv:"K"
          ~doc:"For $(b,--op multi): distinct rule sets cycled through.")
  in
  let fault_tolerant_arg =
    Arg.(
      value & flag
      & info [ "fault-tolerant" ]
          ~doc:"Reconnect and resend on transport failures (reset, EOF \
                mid-request) instead of failing, counting them under \
                $(b,reconnects) — transport recoveries stay distinct from \
                request-level $(b,errors).  The client side of the fleet \
                shard-kill drill.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the summary as a JSON object.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit 1 if any response was malformed (protocol-shape \
                violation) — used by the CI smoke job.")
  in
  let run socket tcp connections requests op distinct ontology batch
      ontologies fault_tolerant json check =
    let addr =
      match (socket, tcp) with
      | Some path, None -> Tgd_net.Transport.Unix_sock path
      | None, Some hostport -> (
        match String.rindex_opt hostport ':' with
        | Some i -> (
          let host = String.sub hostport 0 i
          and port =
            String.sub hostport (i + 1) (String.length hostport - i - 1)
          in
          match int_of_string_opt port with
          | Some p ->
            Tgd_net.Transport.Tcp
              ((if host = "" then "127.0.0.1" else host), p)
          | None ->
            Fmt.epr "tgdtool loadgen: --tcp expects HOST:PORT@.";
            exit 2)
        | None ->
          Fmt.epr "tgdtool loadgen: --tcp expects HOST:PORT@.";
          exit 2)
      | _ ->
        Fmt.epr "tgdtool loadgen: exactly one of --socket/--tcp required@.";
        exit 2
    in
    let tgds =
      Option.map
        (fun path ->
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic)))
        ontology
    in
    let workload =
      match
        Tgd_net.Loadgen.workload_of_name ~distinct ?tgds ~batch ~ontologies op
      with
      | Some w -> w
      | None ->
        Fmt.epr "tgdtool loadgen: unknown --op %S@." op;
        exit 2
    in
    let r =
      Tgd_net.Loadgen.run ~fault_tolerant addr ~connections ~requests workload
    in
    if json then
      print_endline (Tgd_serve.Json.to_string (Tgd_net.Loadgen.result_json r))
    else
      Fmt.pr
        "%d connections x %d requests: %d ok, %d errors, %d malformed, %d \
         reconnects in %.2fs (%.1f req/s, p50 %.2fms, p99 %.2fms)@."
        r.Tgd_net.Loadgen.connections requests r.Tgd_net.Loadgen.ok
        r.Tgd_net.Loadgen.errors r.Tgd_net.Loadgen.malformed
        r.Tgd_net.Loadgen.reconnects r.Tgd_net.Loadgen.elapsed_s
        (Tgd_net.Loadgen.throughput r)
        (1000. *. Tgd_net.Loadgen.percentile r.Tgd_net.Loadgen.latencies_s 50.)
        (1000. *. Tgd_net.Loadgen.percentile r.Tgd_net.Loadgen.latencies_s 99.);
    if check && r.Tgd_net.Loadgen.malformed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen" ~exits
       ~doc:"Drive a running $(b,tgdtool serve --socket/--tcp) server with \
             concurrent closed-loop clients and report throughput and \
             latency percentiles.")
    Term.(
      const run $ socket_arg $ tcp_arg $ connections_arg $ requests_arg
      $ op_arg $ distinct_arg $ ontology_arg $ batch_arg $ ontologies_arg
      $ fault_tolerant_arg $ json_arg $ check_arg)

(* ---- fleet ---- *)

let fleet_cmd =
  let socket_arg =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Connect to a fleet front-end on a Unix-domain socket.")
  in
  let tcp_arg =
    Arg.(
      value & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Connect to a fleet front-end over TCP.")
  in
  let run socket tcp =
    let addr =
      match (socket, tcp) with
      | Some path, None -> Tgd_net.Transport.Unix_sock path
      | None, Some hostport -> (
        match String.rindex_opt hostport ':' with
        | Some i -> (
          let host = String.sub hostport 0 i
          and port =
            String.sub hostport (i + 1) (String.length hostport - i - 1)
          in
          match int_of_string_opt port with
          | Some p ->
            Tgd_net.Transport.Tcp
              ((if host = "" then "127.0.0.1" else host), p)
          | None ->
            Fmt.epr "tgdtool fleet: --tcp expects HOST:PORT@.";
            exit 2)
        | None ->
          Fmt.epr "tgdtool fleet: --tcp expects HOST:PORT@.";
          exit 2)
      | _ ->
        Fmt.epr "tgdtool fleet: exactly one of --socket/--tcp required@.";
        exit 2
    in
    let fd = Tgd_net.Loadgen.connect addr in
    let ic = Unix.in_channel_of_descr fd
    and oc = Unix.out_channel_of_descr fd in
    output_string oc "{\"id\": 0, \"op\": \"fleet_status\"}\n";
    flush oc;
    (match input_line ic with
    | exception End_of_file ->
      Fmt.epr "tgdtool fleet: server closed without answering@.";
      exit 1
    | line -> (
      match Tgd_serve.Json.of_string line with
      | Error msg ->
        Fmt.epr "tgdtool fleet: unparsable response: %s@." msg;
        exit 1
      | Ok resp -> (
        match Tgd_serve.Json.member "result" resp with
        | Some result ->
          print_endline (Tgd_serve.Json.to_string result)
        | None ->
          (* a plain single-process server answers with an error —
             surface it verbatim so the caller sees why *)
          print_endline line;
          exit 1)));
    try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
  in
  let status_cmd =
    Cmd.v
      (Cmd.info "status" ~exits
         ~doc:"Query a running $(b,tgdtool serve --shards N) front-end with \
               the $(b,fleet_status) op and print the result object: shard \
               liveness and pids, quorum, degraded/breaker flags, respawn \
               and chaos-kill counts, and router counters.  Exit 1 when the \
               server is not a fleet.")
      Term.(const run $ socket_arg $ tcp_arg)
  in
  Cmd.group
    (Cmd.info "fleet"
       ~doc:"Inspect a running shard fleet ($(b,tgdtool serve --shards)).")
    [ status_cmd ]

(* ---- workload ---- *)

let workload_cmd =
  let family_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("layered", `Layered); ("layered-exist", `Layered_exist) ]))
          None
      & info [] ~docv:"FAMILY"
          ~doc:
            "$(b,layered) (guarded full rules, plain Datalog) or \
             $(b,layered-exist) (adds one existential sink rule per copy).")
  in
  let copies_arg =
    Arg.(
      value & opt int 16
      & info [ "copies" ] ~docv:"K" ~doc:"Independent gadget copies.")
  in
  let depth_arg =
    Arg.(
      value & opt int 4
      & info [ "depth" ] ~docv:"D" ~doc:"Layers per copy (3 rules each).")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the ontology here.")
  in
  let facts_arg =
    Arg.(
      value & opt (some string) None
      & info [ "facts" ] ~docv:"FILE"
          ~doc:"Also write a seed database (chase workload) to $(docv).")
  in
  let chain_arg =
    Arg.(
      value & opt int 40
      & info [ "chain" ] ~docv:"N"
          ~doc:"Seed facts per copy in the $(b,--facts) database.")
  in
  let run family copies depth out facts chain =
    let module Families = Tgd_workload.Families in
    let sigma =
      match family with
      | `Layered -> Families.layered ~copies ~depth
      | `Layered_exist -> Families.layered_existential ~copies ~depth
    in
    Tgd_parse.Print.to_file out (Tgd_parse.Print.tgds sigma ^ "\n");
    let schema = Rewrite.schema_of sigma in
    let n, m = Rewrite.class_bounds sigma in
    let bound =
      Tgd_core.Counting.guarded_candidates_bound schema ~n ~m
    in
    Fmt.pr "%s: %d rules over %d relations (9.2 candidate bound %s)@." out
      (List.length sigma)
      (List.length (Schema.relations schema))
      (Tgd_core.Bigint.to_string bound);
    Option.iter
      (fun path ->
        let inst = Families.layered_instance ~copies ~depth ~chain in
        let lines =
          Tgd_instance.Instance.fact_list inst
          |> List.map Tgd_parse.Print.fact
        in
        Tgd_parse.Print.to_file path (String.concat "\n" lines ^ "\n");
        Fmt.pr "%s: %d seed facts@." path
          (Tgd_instance.Instance.fact_count inst))
      facts
  in
  Cmd.v
    (Cmd.info "workload" ~exits
       ~doc:"Generate a scalable benchmark ontology (and optional seed \
             database) in surface syntax — the fixtures under data/gen_*.dlp \
             come from here.")
    Term.(
      const run $ family_arg $ copies_arg $ depth_arg $ out_arg $ facts_arg
      $ chain_arg)

let main =
  Cmd.group
    (Cmd.info "tgdtool" ~version:"1.0.0"
       ~doc:"Model-theoretic characterizations of rule-based ontologies (PODS'21) — toolkit.")
    [ classify_cmd; chase_cmd; entails_cmd; rewrite_cmd; properties_cmd;
      synthesize_cmd; count_cmd; diagnose_cmd; theory_cmd; datalog_cmd;
      core_cmd; acyclic_cmd; refute_cmd; analyze_cmd; certcheck_cmd;
      checkpoint_cmd; serve_cmd; loadgen_cmd; fleet_cmd; workload_cmd ]

let () = exit (Cmd.eval main)
